//! Wall-clock cost of the simulator's fork paths themselves — one bench
//! per system and strategy (the simulated-time results are produced by
//! the `repro` binary; these measure the host cost of the mechanism).
//!
//! The `scan=` benches compare the pre-change pipeline (naive per-granule
//! sweep + rebuilt-Vec linear region lookup + per-page PTE inserts,
//! preserved as `ScanMode::Naive`) against the tag-summary fast path
//! (bitmap scan + indexed region lookup + batched walk) on a forking
//! lineage whose pages carry at most a handful of capabilities — the
//! sparse case the tentpole optimizes. Medians land in `BENCH_fork.json`
//! at the repository root so future PRs have a perf trajectory.

use std::hint::black_box;
use std::path::Path;

use ufork::reloc::{relocate_frame, ScanMode};
use ufork::{FallbackPolicy, UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_baselines::{mono, nephele, BaselineConfig};
use ufork_bench::{
    fork_frontier_sweep, fork_scaling_sweep, pressure_children_from_env, pressure_sweep,
    ring_fork_sweep, ring_requests_from_env, ring_service_sweep, snapshot_train_sweep,
    storm_children_from_env, storm_sweep, trace_fork_runs, zygote_fleet_sweep, FrontierRow,
    PressureStormRow, RingForkRow, RingServiceRow, ScalingRow, SnapshotRow, StormMode,
    StormPipeline, TracedFork, ZygoteFleetRow, PRESSURE_P99_LIMIT, PRESSURE_SEED,
    RING_FORK_OVERHEAD_LIMIT, STORM_CORES, STORM_SEED,
};
use ufork_cheri::{Capability, Perms};
use ufork_exec::{Ctx, MemOs};
use ufork_mem::PhysMem;
use ufork_sim::DEFAULT_TRACE_CAPACITY;
use ufork_testkit::bench::bench_with_setup_ns;
use ufork_vmem::{Region, VirtAddr};
use ufork_workloads::storm::StormReport;

/// Forks in the lineage built during setup: each fork retires its parent,
/// so relocation lookups face a realistic population of retired regions.
const LINEAGE: u32 = 12;

fn forking_os(scan: ScanMode) -> (UforkOs, Pid) {
    let cfg = UforkConfig {
        phys_mib: 128,
        strategy: CopyStrategy::Full,
        scan,
        ..UforkConfig::default()
    };
    let mut os = UforkOs::new(cfg);
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    for i in 1..LINEAGE {
        os.fork(&mut ctx, Pid(i), Pid(i + 1)).unwrap();
        os.destroy(&mut ctx, Pid(i));
    }
    (os, Pid(LINEAGE))
}

fn page_scan_bench(mode_name: &str, mode: ScanMode) -> u64 {
    let parent = Region {
        base: VirtAddr(0x10_0000),
        len: 0x10_0000,
    };
    let child = Region {
        base: VirtAddr(0x90_0000),
        len: 0x10_0000,
    };
    let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
    bench_with_setup_ns(
        &format!("fork/page_scan/4caps/{mode_name}"),
        || {
            let mut pm = PhysMem::new(4);
            let f = pm.alloc_frame().unwrap();
            // ≤4 tagged granules: the sparse page the fast path targets.
            for i in 0..4u64 {
                let cap = Capability::new_root(parent.base.0 + i * 0x1000, 64, Perms::data());
                pm.store_cap(f, i * 1024, &cap).unwrap();
            }
            (pm, f)
        },
        |(pm, f)| {
            let stats = relocate_frame(
                pm,
                *f,
                child,
                &child_root,
                &|a| {
                    if a >= parent.base.0 && a < parent.base.0 + parent.len {
                        Some(parent)
                    } else {
                        None
                    }
                },
                mode,
            );
            black_box(stats)
        },
    )
}

fn main() {
    let mut results: Vec<(String, u64)> = Vec::new();

    for strategy in [CopyStrategy::CoPA, CopyStrategy::CoA, CopyStrategy::Full] {
        let ns = bench_with_setup_ns(
            &format!("fork/ufork/{strategy:?}"),
            || {
                let cfg = UforkConfig {
                    phys_mib: 128,
                    strategy,
                    ..UforkConfig::default()
                };
                let mut os = UforkOs::new(cfg);
                let mut ctx = Ctx::new();
                os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                    .unwrap();
                os
            },
            |os| {
                let mut ctx = Ctx::new();
                os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
                black_box(ctx.kernel_ns)
            },
        );
        results.push((format!("fork/ufork/{strategy:?}"), ns));
    }

    // Trace-layer overhead guard: every Ctx now carries a TraceBuf, and
    // the disabled path must cost nothing beyond one untaken branch per
    // charge. The `fork/ufork/Full` bench above IS the disabled-trace
    // number (gated against the pre-trace baseline by bench_gate.py); on
    // top of that, assert in-process that it does not measurably exceed
    // the *enabled*-trace fork — if the disabled path ever started doing
    // tracing work, the two would converge and this still holds, so also
    // record the enabled run for the JSON trajectory and eyeballs.
    let full_off_ns = results
        .iter()
        .find(|(n, _)| n == "fork/ufork/Full")
        .expect("Full fork result")
        .1;
    let full_on_ns = bench_with_setup_ns(
        "fork/ufork/Full/trace_on",
        || {
            let cfg = UforkConfig {
                phys_mib: 128,
                strategy: CopyStrategy::Full,
                ..UforkConfig::default()
            };
            let mut os = UforkOs::new(cfg);
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                .unwrap();
            os
        },
        |os| {
            let mut ctx = Ctx::traced(DEFAULT_TRACE_CAPACITY);
            os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
            black_box(ctx.trace.phase_sum())
        },
    );
    results.push(("fork/ufork/Full/trace_on".to_string(), full_on_ns));
    let trace_overhead = full_on_ns as f64 / full_off_ns.max(1) as f64;
    println!(
        "fork/ufork/Full tracing overhead: {trace_overhead:.2}x (off {full_off_ns} ns -> on {full_on_ns} ns)"
    );
    assert!(
        full_off_ns as f64 <= full_on_ns as f64 * 1.25,
        "disabled-trace fork ({full_off_ns} ns) measurably slower than traced fork \
         ({full_on_ns} ns): the disabled path must be a single untaken branch"
    );

    // The tentpole comparison: an eager-copy fork at the end of a forking
    // lineage, naive pipeline vs. tag-summary fast path.
    let mut lineage_ns = [0u64; 2];
    for (i, (mode_name, mode)) in [
        ("naive", ScanMode::Naive),
        ("tagsummary", ScanMode::TagSummary),
    ]
    .into_iter()
    .enumerate()
    {
        let ns = bench_with_setup_ns(
            &format!("fork/ufork/Full/lineage/{mode_name}"),
            || forking_os(mode),
            |(os, parent)| {
                let mut ctx = Ctx::new();
                os.fork(&mut ctx, *parent, Pid(parent.0 + 1)).unwrap();
                black_box(ctx.kernel_ns)
            },
        );
        results.push((format!("fork/ufork/Full/lineage/{mode_name}"), ns));
        lineage_ns[i] = ns;
    }

    // Per-page scan at ≤4 tagged granules: the acceptance microbench.
    let naive_page = page_scan_bench("naive", ScanMode::Naive);
    let fast_page = page_scan_bench("tagsummary", ScanMode::TagSummary);
    results.push(("fork/page_scan/4caps/naive".to_string(), naive_page));
    results.push(("fork/page_scan/4caps/tagsummary".to_string(), fast_page));

    let ns = bench_with_setup_ns(
        "fork/baseline/mono",
        || {
            let mut os = mono(BaselineConfig {
                phys_mib: 128,
                ..BaselineConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                .unwrap();
            os
        },
        |os| {
            let mut ctx = Ctx::new();
            os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
            black_box(ctx.kernel_ns)
        },
    );
    results.push(("fork/baseline/mono".to_string(), ns));
    let ns = bench_with_setup_ns(
        "fork/baseline/nephele",
        || {
            let mut os = nephele(BaselineConfig {
                phys_mib: 128,
                ..BaselineConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                .unwrap();
            os
        },
        |os| {
            let mut ctx = Ctx::new();
            os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
            black_box(ctx.kernel_ns)
        },
    );
    results.push(("fork/baseline/nephele".to_string(), ns));

    let sparse_speedup = naive_page as f64 / fast_page.max(1) as f64;
    let lineage_speedup = lineage_ns[0] as f64 / lineage_ns[1].max(1) as f64;
    println!("fork/page_scan/4caps speedup: {sparse_speedup:.2}x (naive {naive_page} ns -> tagsummary {fast_page} ns)");
    println!(
        "fork/ufork/Full/lineage speedup: {lineage_speedup:.2}x (naive {} ns -> tagsummary {} ns)",
        lineage_ns[0], lineage_ns[1]
    );

    let (admission, admission_overhead) = run_admission();

    let (scaling, scaling_speedup) = run_scaling();

    let frontier = run_frontier();

    let snapshot = run_snapshot_train();

    let zygote = run_zygote_fleet();

    let storm = run_storm_family();

    let pressure = run_pressure_family();

    let (ring_fork, ring_service) = run_ring_family();
    // Per-phase simulated totals from the trace layer: exactly
    // reproducible, so bench_gate.py gates them like fork_scaling rows.
    let phases = trace_fork_runs();
    for r in &phases {
        println!(
            "fork_phases/{}: {:.0} ns simulated end-to-end across {} phases",
            r.name,
            r.end_to_end_ns,
            r.buf.phases().len()
        );
    }
    write_json(
        &results,
        &Speedups {
            sparse: sparse_speedup,
            lineage: lineage_speedup,
            trace: trace_overhead,
            admission: admission_overhead,
            scaling: scaling_speedup,
        },
        &admission,
        &scaling,
        &frontier,
        &phases,
        &storm,
        &pressure,
        &snapshot,
        &zygote,
        &ring_fork,
        &ring_service,
    );
}

/// Runs the `fork_pressure` family: the churning storm across occupancy
/// × reclaim daemon. `pressure_sweep` runs every point twice, asserts
/// bit-identical repeats, daemon invisibility at Normal pressure,
/// daemon engagement at Elevated, and the PR's survival gate in-process
/// (fork p99 across the high watermark ≤ 1.25× the low-occupancy p99
/// with the daemon on); bench_gate.py holds the JSON rows to the same
/// limit across PRs, with the daemon-off ablation kept alongside.
fn run_pressure_family() -> Vec<PressureStormRow> {
    let children = pressure_children_from_env();
    let rows = pressure_sweep(children, PRESSURE_SEED, STORM_CORES);
    for r in &rows {
        println!(
            "fork_pressure/{}/daemon={}: fork p50 {:.0} ns / p99 {:.0} ns, {} bg passes, {} prezeroed, {} magazine hits, {} inline reclaims, {} oom kills",
            r.occupancy, r.daemon, r.sim_p50_ns, r.sim_p99_ns,
            r.reclaim_background, r.frames_prezeroed, r.magazine_hits,
            r.reclaim_inline, r.oom_kills
        );
    }
    let p99 = |occupancy: &str, daemon: bool| {
        rows.iter()
            .find(|r| r.occupancy == occupancy && r.daemon == daemon)
            .expect("pressure row")
            .sim_p99_ns
    };
    println!(
        "fork_pressure high-watermark p99 over low (daemon on): {:.3}x (limit {PRESSURE_P99_LIMIT}x); daemon-off ablation: {:.3}x",
        p99("high", true) / p99("low", true),
        p99("high", false) / p99("low", false),
    );
    rows
}

/// Runs the `fork_ring` family: the fork probe (pipes vs live ring
/// endpoints, every storm mode) and the multi-tier ring-service sweep.
/// `ring_fork_sweep`/`ring_service_sweep` already run everything twice
/// and assert bit-identical simulated numbers; on top, this enforces the
/// PR's acceptance gate in-process: carrying live sealed ring endpoints
/// across fork costs at most 1.2× the pipe-only fork in every mode.
/// (bench_gate.py holds the JSON rows to the same limit across PRs.)
fn run_ring_family() -> (Vec<RingForkRow>, Vec<RingServiceRow>) {
    let rows = ring_fork_sweep();
    for r in &rows {
        println!(
            "fork_ring/{}/{}: {:.0} ns simulated fork with {} endpoints ({} sealed caps relocated)",
            r.mode, r.setup, r.sim_fork_ns, r.endpoints, r.ring_caps_relocated
        );
    }
    let pick = |mode: &str, setup: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.setup == setup)
            .expect("ring probe row")
            .sim_fork_ns
    };
    for mode in rows
        .iter()
        .map(|r| r.mode)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let pipes = pick(mode, "pipes");
        let rings = pick(mode, "rings");
        let ratio = rings / pipes;
        println!("fork_ring/{mode} rings over pipes: {ratio:.3}x ({pipes:.0} ns -> {rings:.0} ns)");
        assert!(
            ratio <= RING_FORK_OVERHEAD_LIMIT,
            "fork_ring/{mode}: fork with live ring endpoints ({rings:.0} ns) is {ratio:.3}x \
             the pipe-only fork ({pipes:.0} ns); must stay <= {RING_FORK_OVERHEAD_LIMIT}x"
        );
    }
    let service = ring_service_sweep(ring_requests_from_env());
    for r in &service {
        println!(
            "fork_ring_service/{}: {} requests in {:.3} sim-s ({} ring msgs, {} full stalls, {} caps relocated, kv {:#018x})",
            r.mode, r.requests, r.sim_final_ns / 1e9,
            r.ring_msgs, r.ring_full_stalls, r.ring_caps_relocated, r.kv_digest
        );
    }
    (rows, service)
}

/// Runs the dirty-scope snapshot train twice, asserts determinism, and
/// enforces the PR's asymptotic acceptance gate in-process: at a 5%
/// write rate every steady-state (N≥2) `DirtySince` fork completes its
/// copy within 0.25× the `Everything`-scope fork, under both the serial
/// and the pipelined walk. (bench_gate.py holds the JSON rows to the
/// same threshold across PRs.)
fn run_snapshot_train() -> Vec<SnapshotRow> {
    let rows = snapshot_train_sweep();
    let again = snapshot_train_sweep();
    for (a, b) in rows.iter().zip(&again) {
        assert_eq!(
            a.sim_fork_ns.to_bits(),
            b.sim_fork_ns.to_bits(),
            "fork_snapshot_train/{}/{}/{} is nondeterministic",
            a.scope,
            a.walk,
            a.snapshot
        );
        assert_eq!(a.sim_copy_done_ns.to_bits(), b.sim_copy_done_ns.to_bits());
    }
    for r in &rows {
        println!(
            "fork_snapshot_train/{}/{}/{}: fork {:.0} ns, copy done {:.0} ns ({} dirty copied, {} shared clean)",
            r.scope, r.walk, r.snapshot, r.sim_fork_ns, r.sim_copy_done_ns,
            r.pages_dirty_copied, r.pages_shared_clean
        );
    }
    let pick = |scope: &str, walk: &str, snap: u32| {
        rows.iter()
            .find(|r| r.scope == scope && r.walk == walk && r.snapshot == snap)
            .expect("snapshot row")
    };
    for walk in ["serial", "pipelined"] {
        for snap in 2..=ufork_bench::TRAIN_SNAPSHOTS {
            let dirty = pick("dirty", walk, snap);
            let every = pick("everything", walk, snap);
            let ratio = dirty.sim_copy_done_ns / every.sim_copy_done_ns;
            assert!(
                ratio <= 0.25,
                "{walk} snapshot {snap}: DirtySince copy-done {:.0} ns is {ratio:.3}x the \
                 Everything fork ({:.0} ns); the dirty scope must stay under 0.25x at 5% writes",
                dirty.sim_copy_done_ns,
                every.sim_copy_done_ns
            );
            assert!(
                dirty.pages_shared_clean > 0,
                "{walk} snapshot {snap}: no clean pages were shared"
            );
        }
        let ratio =
            pick("dirty", walk, 2).sim_copy_done_ns / pick("everything", walk, 2).sim_copy_done_ns;
        println!("fork_snapshot_train/{walk} dirty over everything (snapshot 2): {ratio:.3}x");
    }
    rows
}

/// Runs the zygote fleet twice, asserts determinism, and enforces the
/// dedup acceptance gate: with cross-child frame dedup on, M warm
/// children stay within 1.2× the resident frames of a single child.
fn run_zygote_fleet() -> Vec<ZygoteFleetRow> {
    let rows = zygote_fleet_sweep();
    let again = zygote_fleet_sweep();
    for (a, b) in rows.iter().zip(&again) {
        assert_eq!(
            (a.frames_fleet, a.frames_deduped),
            (b.frames_fleet, b.frames_deduped),
            "fork_zygote/{} is nondeterministic",
            a.variant
        );
    }
    for r in &rows {
        println!(
            "fork_zygote/{}: {} children, {} frames after 1 child -> {} after fleet ({} deduped, {} probes, {} shared clean)",
            r.variant, r.children, r.frames_one_child, r.frames_fleet,
            r.frames_deduped, r.dedup_hash_probes, r.pages_shared_clean
        );
    }
    for r in &rows {
        if r.variant.starts_with("dedup/") || r.variant.starts_with("dirty/") {
            let ratio = f64::from(r.frames_fleet) / f64::from(r.frames_one_child);
            assert!(
                ratio <= 1.2,
                "fork_zygote/{}: fleet of {} holds {} frames, {ratio:.3}x a single child's {} \
                 (must stay <= 1.2x)",
                r.variant,
                r.children,
                r.frames_fleet,
                r.frames_one_child
            );
        }
        if r.variant.starts_with("dedup/") {
            assert!(
                r.frames_deduped > 0,
                "fork_zygote/{}: dedup enabled but no frames were deduplicated",
                r.variant
            );
        }
    }
    rows
}

/// Runs the pipelined-fork latency frontier twice, asserts determinism,
/// and enforces the PR's acceptance criteria on it: the pipelined walk
/// commits within 1.5× the CoPA fork on both heap shapes while its
/// total copy-complete time stays eager-grade work (the trace tests
/// separately prove the copy-work parity page for page).
fn run_frontier() -> Vec<FrontierRow> {
    let rows = fork_frontier_sweep();
    let again = fork_frontier_sweep();
    for (a, b) in rows.iter().zip(&again) {
        assert_eq!(
            a.commit_ns.to_bits(),
            b.commit_ns.to_bits(),
            "fork_pipeline/{}/{} is nondeterministic",
            a.heap,
            a.mode
        );
        assert_eq!(a.copy_done_ns.to_bits(), b.copy_done_ns.to_bits());
    }
    for r in &rows {
        println!(
            "fork_pipeline/{}/{}: commit {:.0} ns, copy done {:.0} ns (simulated)",
            r.heap, r.mode, r.commit_ns, r.copy_done_ns
        );
    }
    let pick = |heap: &str, mode: &str| {
        *rows
            .iter()
            .find(|r| r.heap == heap && r.mode == mode)
            .expect("frontier row")
    };
    for heap in ["cap-sparse", "cap-dense"] {
        let piped = pick(heap, "pipelined");
        let copa = pick(heap, "copa");
        let full = pick(heap, "full");
        let ratio = piped.commit_ns / copa.commit_ns;
        println!(
            "fork_pipeline/{heap} pipelined commit over copa: {ratio:.3}x ({:.0} ns vs {:.0} ns)",
            piped.commit_ns, copa.commit_ns
        );
        assert!(
            ratio <= 1.5,
            "{heap}: pipelined commit {:.0} ns exceeds 1.5x CoPA ({:.0} ns)",
            piped.commit_ns,
            copa.commit_ns
        );
        assert!(
            piped.commit_ns < full.commit_ns,
            "{heap}: pipelined commit not earlier than the eager serial fork"
        );
        assert!(
            piped.copy_done_ns > piped.commit_ns,
            "{heap}: pipelined fork deferred no copy work"
        );
    }
    rows
}

/// Runs the fork-storm sweep through the event-driven scheduler:
/// `BENCH_STORM_CHILDREN` concurrent children (default 10 000; CI smoke
/// sets a reduced N) per copy-strategy mode, on 8 simulated cores.
///
/// All metrics are *simulated* time. `storm_sweep` itself runs every
/// mode twice and asserts the two runs bit-identical (event-log digest,
/// final sim time, p50/p99), and `run_storm` inside it asserts full
/// completion, full overlap (peak_live == children), and zero leaked
/// frames — so a row landing in the JSON certifies the scheduler held
/// 10k live μprocesses deterministically.
fn run_storm_family() -> Vec<(StormMode, StormReport, StormPipeline)> {
    let children = storm_children_from_env();
    let rows = storm_sweep(children, STORM_SEED, STORM_CORES);
    for (mode, r, p) in &rows {
        println!(
            "fork_storm/{}: {} children, fork p50 {:.0} ns / p99 {:.0} ns, {:.1} forks/sim-s, {:.3} sim-s, {} copy windows (p99 behind {:.0} ns)",
            mode.label,
            r.completed,
            r.p50_fork_ns,
            r.p99_fork_ns,
            r.forks_per_sim_sec,
            r.final_ns / 1e9,
            p.windows,
            p.p99_copy_done_ns
        );
    }
    // The point of committing early: under storm pressure the pipelined
    // eager fork must beat the widest synchronous parallel walk at the
    // tail, not just the median.
    let p99 = |label: &str| {
        rows.iter()
            .find(|(m, _, _)| m.label == label)
            .expect("storm mode")
            .1
            .p99_fork_ns
    };
    assert!(
        p99("full_pipelined") < p99("full_par8"),
        "pipelined storm fork p99 ({:.0} ns) does not improve on full_par8 ({:.0} ns)",
        p99("full_pipelined"),
        p99("full_par8")
    );
    rows
}

/// The derived ratios reported in the JSON `speedup` section.
struct Speedups {
    sparse: f64,
    lineage: f64,
    trace: f64,
    admission: f64,
    scaling: f64,
}

/// Simulated kernel time of one uncontended cap-sparse Full fork under
/// the given admission fallback policy.
fn admission_fork_ns(policy: FallbackPolicy) -> f64 {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        strategy: CopyStrategy::Full,
        fallback: policy,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    let mut fctx = Ctx::new();
    os.fork(&mut fctx, Pid(1), Pid(2)).unwrap();
    fctx.kernel_ns
}

/// Measures the admission-control pre-flight cost on an uncontended fork
/// in *simulated* time: `FallbackPolicy::Strict` (the default: reserve
/// the frame demand up front) against `FallbackPolicy::Disabled` (run
/// straight into the allocator). Deterministic, so bench_gate.py holds
/// both rows to the strict threshold — admission must stay a fixed
/// per-fork charge, never a per-page one.
fn run_admission() -> (Vec<(&'static str, f64)>, f64) {
    let rows: Vec<(&'static str, f64)> = [
        ("disabled", FallbackPolicy::Disabled),
        ("strict", FallbackPolicy::Strict),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let ns = admission_fork_ns(policy);
        let again = admission_fork_ns(policy);
        assert_eq!(
            ns.to_bits(),
            again.to_bits(),
            "fork_admission/{label} is nondeterministic: {ns} ns vs {again} ns"
        );
        println!("fork_admission/{label}: {ns:.0} ns simulated");
        (label, ns)
    })
    .collect();
    let overhead = rows[1].1 / rows[0].1;
    println!(
        "fork_admission strict over disabled: {overhead:.4}x ({:.0} ns -> {:.0} ns)",
        rows[0].1, rows[1].1
    );
    (rows, overhead)
}

/// Runs the 1/2/4/8-worker scaling sweep in *simulated* time, twice, and
/// enforces the PR's acceptance criteria: repeated runs are bit-identical
/// (determinism) and 8 workers beat the serial walk ≥2× on the cap-dense
/// heap. Returns the rows and the dense serial/par8 speedup.
fn run_scaling() -> (Vec<ScalingRow>, f64) {
    let rows = fork_scaling_sweep();
    let again = fork_scaling_sweep();
    for (a, b) in rows.iter().zip(&again) {
        assert_eq!(
            a.sim_fork_ns.to_bits(),
            b.sim_fork_ns.to_bits(),
            "fork_scaling/{}/{} is nondeterministic: {} ns vs {} ns",
            a.heap,
            a.mode_label(),
            a.sim_fork_ns,
            b.sim_fork_ns
        );
        assert_eq!(a.sim_copy_done_ns.to_bits(), b.sim_copy_done_ns.to_bits());
    }
    let dense_ns = |workers: usize| {
        rows.iter()
            .find(|r| r.heap == "cap-dense" && r.workers == workers)
            .expect("dense row")
            .sim_fork_ns
    };
    let speedup = dense_ns(0) / dense_ns(8);
    for r in &rows {
        println!(
            "fork_scaling/{}/{}: {:.0} ns simulated, copy done {:.0} ns ({} chunks, {} steals, {} recycled, {} zero-skipped)",
            r.heap,
            r.mode_label(),
            r.sim_fork_ns,
            r.sim_copy_done_ns,
            r.chunks,
            r.steals,
            r.recycled,
            r.zeroing_skipped
        );
    }
    println!(
        "fork_scaling/cap-dense serial over par8: {speedup:.2}x ({:.0} ns -> {:.0} ns)",
        dense_ns(0),
        dense_ns(8)
    );
    assert!(
        speedup >= 2.0,
        "parallel walk too slow: cap-dense Parallel(8) is only {speedup:.2}x over Serial (need >= 2x)"
    );
    (rows, speedup)
}

/// Writes `BENCH_fork.json` at the repository root (no serde: the schema
/// is flat enough to format by hand). `results` are host wall-clock
/// best-of-samples; the `fork_scaling` section is *simulated* time and
/// therefore exactly reproducible.
#[allow(clippy::too_many_arguments)] // one slice per JSON family
fn write_json(
    results: &[(String, u64)],
    speedups: &Speedups,
    admission: &[(&'static str, f64)],
    scaling: &[ScalingRow],
    frontier: &[FrontierRow],
    phases: &[TracedFork],
    storm: &[(StormMode, StormReport, StormPipeline)],
    pressure: &[PressureStormRow],
    snapshot: &[SnapshotRow],
    zygote: &[ZygoteFleetRow],
    ring_fork: &[RingForkRow],
    ring_service: &[RingServiceRow],
) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_fork.json");
    let rows = results
        .iter()
        .map(|(name, ns)| format!("    {{\"name\": \"{name}\", \"best_ns\": {ns}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let scaling_rows = scaling
        .iter()
        .map(|r| {
            format!(
                "    {{\"heap\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"sim_fork_ns\": {:.1}, \"sim_copy_done_ns\": {:.1}, \"chunks\": {}, \"steals\": {}, \"recycled\": {}, \"zeroing_skipped\": {}}}",
                r.heap,
                r.mode_label(),
                r.workers,
                r.sim_fork_ns,
                r.sim_copy_done_ns,
                r.chunks,
                r.steals,
                r.recycled,
                r.zeroing_skipped
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let frontier_rows = frontier
        .iter()
        .map(|r| {
            format!(
                "    {{\"heap\": \"{}\", \"mode\": \"{}\", \"sim_commit_ns\": {:.1}, \"sim_copy_done_ns\": {:.1}}}",
                r.heap, r.mode, r.commit_ns, r.copy_done_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let phase_rows = phases
        .iter()
        .flat_map(|r| {
            r.buf.phases().iter().map(move |p| {
                format!(
                    "    {{\"mode\": \"{}\", \"phase\": \"{}\", \"sim_total_ns\": {:.1}, \"spans\": {}}}",
                    r.name, p.name, p.total_ns, p.count
                )
            })
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let admission_rows = admission
        .iter()
        .map(|(policy, ns)| format!("    {{\"policy\": \"{policy}\", \"sim_fork_ns\": {ns:.1}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let storm_rows = storm
        .iter()
        .map(|(mode, r, p)| {
            format!(
                "    {{\"mode\": \"{}\", \"children\": {}, \"completed\": {}, \"peak_live\": {}, \"retries\": {}, \"sim_p50_ns\": {:.1}, \"sim_p99_ns\": {:.1}, \"sim_mean_ns\": {:.1}, \"sim_ns_per_fork\": {:.1}, \"forks_per_sim_sec\": {:.3}, \"sim_final_ns\": {:.1}, \"copy_windows\": {}, \"sim_copy_done_p50_ns\": {:.1}, \"sim_copy_done_p99_ns\": {:.1}, \"digest\": \"{:016x}\"}}",
                mode.label,
                r.children,
                r.completed,
                r.peak_live,
                r.retries,
                r.p50_fork_ns,
                r.p99_fork_ns,
                r.mean_fork_ns,
                r.sim_ns_per_fork,
                r.forks_per_sim_sec,
                r.final_ns,
                p.windows,
                p.p50_copy_done_ns,
                p.p99_copy_done_ns,
                r.digest
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let pressure_rows = pressure
        .iter()
        .map(|r| {
            format!(
                "    {{\"occupancy\": \"{}\", \"daemon\": {}, \"children\": {}, \"sim_p50_ns\": {:.1}, \"sim_p99_ns\": {:.1}, \"sim_final_ns\": {:.1}, \"reclaim_background\": {}, \"frames_prezeroed\": {}, \"magazine_hits\": {}, \"reclaim_inline\": {}, \"oom_kills\": {}, \"digest\": \"{:016x}\"}}",
                r.occupancy,
                r.daemon,
                r.children,
                r.sim_p50_ns,
                r.sim_p99_ns,
                r.sim_final_ns,
                r.reclaim_background,
                r.frames_prezeroed,
                r.magazine_hits,
                r.reclaim_inline,
                r.oom_kills,
                r.digest
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let snapshot_rows = snapshot
        .iter()
        .map(|r| {
            format!(
                "    {{\"system\": \"{}\", \"scope\": \"{}\", \"walk\": \"{}\", \"snapshot\": {}, \"sim_fork_ns\": {:.1}, \"sim_copy_done_ns\": {:.1}, \"pages_dirty_copied\": {}, \"pages_shared_clean\": {}}}",
                r.system,
                r.scope,
                r.walk,
                r.snapshot,
                r.sim_fork_ns,
                r.sim_copy_done_ns,
                r.pages_dirty_copied,
                r.pages_shared_clean
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let zygote_rows = zygote
        .iter()
        .map(|r| {
            format!(
                "    {{\"variant\": \"{}\", \"children\": {}, \"frames_one_child\": {}, \"frames_fleet\": {}, \"frames_deduped\": {}, \"dedup_hash_probes\": {}, \"pages_shared_clean\": {}}}",
                r.variant,
                r.children,
                r.frames_one_child,
                r.frames_fleet,
                r.frames_deduped,
                r.dedup_hash_probes,
                r.pages_shared_clean
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let ring_fork_rows = ring_fork
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"setup\": \"{}\", \"endpoints\": {}, \"sim_fork_ns\": {:.1}, \"ring_caps_relocated\": {}}}",
                r.mode, r.setup, r.endpoints, r.sim_fork_ns, r.ring_caps_relocated
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let ring_service_rows = ring_service
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"requests\": {}, \"sim_final_ns\": {:.1}, \"ring_msgs\": {}, \"ring_full_stalls\": {}, \"ring_caps_relocated\": {}, \"kv_digest\": \"{:016x}\"}}",
                r.mode,
                r.requests,
                r.sim_final_ns,
                r.ring_msgs,
                r.ring_full_stalls,
                r.ring_caps_relocated,
                r.kv_digest
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let body = format!(
        "{{\n  \"schema\": \"ufork-bench-fork/v9\",\n  \"unit\": \"ns/iter (best of samples, setup untimed); sim_* fields are simulated ns\",\n  \"results\": [\n{rows}\n  ],\n  \"fork_scaling\": [\n{scaling_rows}\n  ],\n  \"fork_pipeline\": [\n{frontier_rows}\n  ],\n  \"fork_phases\": [\n{phase_rows}\n  ],\n  \"fork_admission\": [\n{admission_rows}\n  ],\n  \"fork_storm\": [\n{storm_rows}\n  ],\n  \"fork_pressure\": [\n{pressure_rows}\n  ],\n  \"fork_snapshot_train\": [\n{snapshot_rows}\n  ],\n  \"fork_zygote\": [\n{zygote_rows}\n  ],\n  \"fork_ring\": [\n{ring_fork_rows}\n  ],\n  \"fork_ring_service\": [\n{ring_service_rows}\n  ],\n  \"speedup\": {{\n    \"page_scan_4caps_naive_over_tagsummary\": {sparse:.2},\n    \"fork_full_lineage_naive_over_tagsummary\": {lineage:.2},\n    \"fork_scaling_dense_serial_over_par8\": {scaling_speedup:.2},\n    \"fork_full_trace_on_over_off\": {trace:.2},\n    \"fork_full_admission_strict_over_disabled\": {admission_overhead:.4}\n  }}\n}}\n",
        sparse = speedups.sparse,
        lineage = speedups.lineage,
        scaling_speedup = speedups.scaling,
        trace = speedups.trace,
        admission_overhead = speedups.admission,
    );
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
