//! Wall-clock cost of the simulator's fork paths themselves — one bench
//! per system and strategy (the simulated-time results are produced by
//! the `repro` binary; these measure the host cost of the mechanism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_baselines::{mono, nephele, BaselineConfig};
use ufork_exec::{Ctx, MemOs};

fn bench_ufork_fork(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork/ufork");
    for strategy in [CopyStrategy::CoPA, CopyStrategy::CoA, CopyStrategy::Full] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter_with_setup(
                    || {
                        let cfg = UforkConfig {
                            phys_mib: 128,
                            strategy,
                            ..UforkConfig::default()
                        };
                        let mut os = UforkOs::new(cfg);
                        let mut ctx = Ctx::new();
                        os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                            .unwrap();
                        os
                    },
                    |mut os| {
                        let mut ctx = Ctx::new();
                        os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
                        black_box(ctx.kernel_ns)
                    },
                )
            },
        );
    }
    g.finish();
}

fn bench_baseline_fork(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork/baseline");
    g.bench_function("mono", |b| {
        b.iter_with_setup(
            || {
                let mut os = mono(BaselineConfig {
                    phys_mib: 128,
                    ..BaselineConfig::default()
                });
                let mut ctx = Ctx::new();
                os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                    .unwrap();
                os
            },
            |mut os| {
                let mut ctx = Ctx::new();
                os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
                black_box(ctx.kernel_ns)
            },
        )
    });
    g.bench_function("nephele", |b| {
        b.iter_with_setup(
            || {
                let mut os = nephele(BaselineConfig {
                    phys_mib: 128,
                    ..BaselineConfig::default()
                });
                let mut ctx = Ctx::new();
                os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                    .unwrap();
                os
            },
            |mut os| {
                let mut ctx = Ctx::new();
                os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
                black_box(ctx.kernel_ns)
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_ufork_fork, bench_baseline_fork);
criterion_main!(benches);
