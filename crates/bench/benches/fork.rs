//! Wall-clock cost of the simulator's fork paths themselves — one bench
//! per system and strategy (the simulated-time results are produced by
//! the `repro` binary; these measure the host cost of the mechanism).

use std::hint::black_box;
use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_baselines::{mono, nephele, BaselineConfig};
use ufork_exec::{Ctx, MemOs};
use ufork_testkit::bench::bench_with_setup;

fn main() {
    for strategy in [CopyStrategy::CoPA, CopyStrategy::CoA, CopyStrategy::Full] {
        bench_with_setup(
            &format!("fork/ufork/{strategy:?}"),
            || {
                let cfg = UforkConfig {
                    phys_mib: 128,
                    strategy,
                    ..UforkConfig::default()
                };
                let mut os = UforkOs::new(cfg);
                let mut ctx = Ctx::new();
                os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                    .unwrap();
                os
            },
            |mut os| {
                let mut ctx = Ctx::new();
                os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
                black_box(ctx.kernel_ns)
            },
        );
    }

    bench_with_setup(
        "fork/baseline/mono",
        || {
            let mut os = mono(BaselineConfig {
                phys_mib: 128,
                ..BaselineConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                .unwrap();
            os
        },
        |mut os| {
            let mut ctx = Ctx::new();
            os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
            black_box(ctx.kernel_ns)
        },
    );
    bench_with_setup(
        "fork/baseline/nephele",
        || {
            let mut os = nephele(BaselineConfig {
                phys_mib: 128,
                ..BaselineConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
                .unwrap();
            os
        },
        |mut os| {
            let mut ctx = Ctx::new();
            os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
            black_box(ctx.kernel_ns)
        },
    );
}
