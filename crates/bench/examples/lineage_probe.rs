//! Direct timing probe for the lineage fork (no setup subtraction).
use std::time::Instant;
use ufork::reloc::ScanMode;
use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_exec::{Ctx, MemOs};

fn forking_os(scan: ScanMode) -> (UforkOs, Pid) {
    let cfg = UforkConfig {
        phys_mib: 128,
        strategy: CopyStrategy::Full,
        scan,
        ..UforkConfig::default()
    };
    let mut os = UforkOs::new(cfg);
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    for i in 1..12 {
        os.fork(&mut ctx, Pid(i), Pid(i + 1)).unwrap();
        os.destroy(&mut ctx, Pid(i));
    }
    (os, Pid(12))
}

fn main() {
    let reps = 400;
    let mut setup_ns = 0u128;
    let mut fork_ns: Vec<u64> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let (mut os, parent) = forking_os(ScanMode::TagSummary);
        setup_ns += t0.elapsed().as_nanos();
        let mut ctx = Ctx::new();
        let t = Instant::now();
        os.fork(&mut ctx, parent, Pid(parent.0 + 1)).unwrap();
        fork_ns.push(t.elapsed().as_nanos() as u64);
    }
    fork_ns.sort_unstable();
    println!(
        "lineage fork direct: median {} ns, p10 {} ns, p90 {} ns | setup avg {} ns",
        fork_ns[reps / 2],
        fork_ns[reps / 10],
        fork_ns[reps * 9 / 10],
        setup_ns as u64 / reps as u64
    );
}
