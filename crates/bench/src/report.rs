//! Plain-text table rendering for the `repro` binary.

/// Renders rows of cells as an aligned table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a f64 with sensible precision for the magnitude.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Human-readable size label for a DB size in bytes.
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{}MB", bytes / 1_000_000)
    } else {
        format!("{}KB", bytes / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     long-header"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1234.6), "1235");
        assert_eq!(num(56.78), "56.8");
        assert_eq!(num(1.234), "1.23");
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(100_000), "100KB");
        assert_eq!(size_label(1_000_000), "1MB");
        assert_eq!(size_label(100_000_000), "100MB");
    }
}
