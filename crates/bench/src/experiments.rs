//! The experiments behind every figure of the evaluation.

use ufork::{FallbackPolicy, UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, Fd, ImageSpec, IsolationLevel, Pid, Program, SysResult};
use ufork_baselines::{mono, nephele, BaselineConfig, MultiAsOs};
use ufork_exec::{ConnTemplate, Ctx, ExitEvent, ForkEvent, Machine, MachineConfig, MemOs};
use ufork_mem::{MemStats, ShardStats, PAGE_SIZE};
use ufork_workloads::faas::{FaasConfig, Zygote};
use ufork_workloads::hello::HelloWorld;
use ufork_workloads::nginx::{Nginx, NginxConfig};
use ufork_workloads::redis::{RedisConfig, RedisServer};
use ufork_workloads::ubench::{Context1, SpawnBench};

/// Which system (and configuration) an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sys {
    /// μFork with a copy strategy and isolation level.
    Ufork(CopyStrategy, IsolationLevel),
    /// CheriBSD-like monolithic baseline.
    Mono,
    /// Nephele-like VM-cloning baseline.
    Nephele,
}

impl Sys {
    /// Human-readable label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            Sys::Ufork(s, iso) => {
                let strat = match s {
                    CopyStrategy::CoPA => "μFork (CoPA)",
                    CopyStrategy::CoA => "μFork (CoA)",
                    CopyStrategy::Full => "μFork (full copy)",
                };
                match iso {
                    IsolationLevel::Full => format!("{strat} +TOCTTOU"),
                    IsolationLevel::Fault => strat.to_string(),
                    IsolationLevel::None => format!("{strat} no-iso"),
                }
            }
            Sys::Mono => "CheriBSD".to_string(),
            Sys::Nephele => "Nephele".to_string(),
        }
    }
}

/// Dispatching wrapper over the two machine types.
// A handful of these exist per experiment; the size gap between the two
// kernels is irrelevant here, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum AnyMachine {
    /// μFork machine.
    U(Machine<UforkOs>),
    /// Baseline machine.
    B(Machine<MultiAsOs>),
}

macro_rules! delegate {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyMachine::U($m) => $body,
            AnyMachine::B($m) => $body,
        }
    };
}

impl AnyMachine {
    /// Builds a machine for `sys`.
    pub fn build(sys: Sys, phys_mib: u32, mcfg: MachineConfig) -> AnyMachine {
        match sys {
            Sys::Ufork(strategy, isolation) => {
                let cfg = UforkConfig {
                    phys_mib,
                    strategy,
                    isolation,
                    ..UforkConfig::default()
                };
                AnyMachine::U(Machine::new(UforkOs::new(cfg), mcfg))
            }
            Sys::Mono => {
                let cfg = BaselineConfig {
                    phys_mib,
                    ..BaselineConfig::default()
                };
                AnyMachine::B(Machine::new(mono(cfg), mcfg))
            }
            Sys::Nephele => {
                let cfg = BaselineConfig {
                    phys_mib,
                    ..BaselineConfig::default()
                };
                AnyMachine::B(Machine::new(nephele(cfg), mcfg))
            }
        }
    }

    /// See [`Machine::spawn`].
    pub fn spawn(&mut self, image: &ImageSpec, program: Box<dyn Program>) -> SysResult<Pid> {
        delegate!(self, m => m.spawn(image, program))
    }

    /// See [`Machine::run`].
    pub fn run(&mut self) {
        delegate!(self, m => m.run())
    }

    /// See [`Machine::step`].
    pub fn step(&mut self) -> bool {
        delegate!(self, m => m.step())
    }

    /// See [`Machine::now`].
    pub fn now(&self) -> f64 {
        delegate!(self, m => m.now())
    }

    /// See [`Machine::fork_log`].
    pub fn fork_log(&self) -> &[ForkEvent] {
        delegate!(self, m => m.fork_log())
    }

    /// See [`Machine::exit_log`].
    pub fn exit_log(&self) -> &[ExitEvent] {
        delegate!(self, m => m.exit_log())
    }

    /// Total requests served by synthetic connections.
    pub fn total_served(&self) -> u64 {
        delegate!(self, m => m.vfs().total_served)
    }

    /// See [`Machine::exit_code`].
    pub fn exit_code(&self, pid: Pid) -> Option<i32> {
        delegate!(self, m => m.exit_code(pid))
    }

    /// See [`Machine::program`].
    pub fn program<T: 'static>(&self, pid: Pid) -> Option<&T> {
        delegate!(self, m => m.program::<T>(pid))
    }

    /// See [`Machine::set_affinity`].
    pub fn set_affinity(&mut self, pid: Pid, cores: Vec<usize>) {
        delegate!(self, m => m.set_affinity(pid, cores))
    }

    /// See [`Machine::install_listener`].
    pub fn install_listener(
        &mut self,
        pid: Pid,
        template: ConnTemplate,
        conns: u64,
    ) -> SysResult<Fd> {
        delegate!(self, m => m.install_listener(pid, template, conns))
    }

    /// Per-process memory statistics.
    pub fn mem_stats(&self, pid: Pid) -> MemStats {
        delegate!(self, m => m.os.mem_stats(pid))
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u32 {
        delegate!(self, m => m.os.allocated_frames())
    }

    /// Frame high-water mark.
    pub fn peak_frames(&self) -> u32 {
        delegate!(self, m => m.os.peak_frames())
    }

    /// See [`Machine::counters`].
    pub fn counters(&self) -> &ufork_sim::OpCounters {
        delegate!(self, m => m.counters())
    }
}

// ---------------------------------------------------------------------------
// Figure 8: hello-world fork latency + per-process memory.
// ---------------------------------------------------------------------------

/// One Figure 8 row.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// System label.
    pub system: String,
    /// Fork latency in µs.
    pub fork_us: f64,
    /// Child proportional resident set right after fork, MB.
    pub mem_mb: f64,
}

/// Runs the hello-world microbenchmark on all three systems.
pub fn fig8() -> Vec<Fig8Row> {
    let systems = [
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault),
        Sys::Mono,
        Sys::Nephele,
    ];
    let mut rows = Vec::new();
    for sys in systems {
        let mut m = AnyMachine::build(sys, 256, MachineConfig::default());
        let pid = m
            .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
            .expect("spawn hello");
        // Step until the fork completes, then sample the child's memory.
        while m.fork_log().is_empty() && m.step() {}
        let f = m.fork_log()[0];
        let child_prs = m.mem_stats(f.child).prs_mib();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        rows.push(Fig8Row {
            system: sys.label(),
            fork_us: f.latency_ns / 1e3,
            mem_mb: child_prs,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 9: Unixbench Spawn and Context1.
// ---------------------------------------------------------------------------

/// One Figure 9 row.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// System label.
    pub system: String,
    /// Unixbench Spawn: total time for `spawn_iters` fork+exit+wait, ms.
    pub spawn_ms: f64,
    /// Unixbench Context1: total time to pass the counter to the limit,
    /// ms.
    pub context1_ms: f64,
}

/// Runs Unixbench Spawn (`spawn_iters` forks) and Context1 (to
/// `ctx1_limit`) on μFork and CheriBSD.
pub fn fig9(spawn_iters: u32, ctx1_limit: u64) -> Vec<Fig9Row> {
    let systems = [
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault),
        Sys::Mono,
    ];
    let mut rows = Vec::new();
    for sys in systems {
        let mut m = AnyMachine::build(sys, 256, MachineConfig::default());
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(SpawnBench::new(spawn_iters)),
            )
            .expect("spawn");
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        let spawn_ms = m.now() / 1e6;

        let mut m2 = AnyMachine::build(sys, 256, MachineConfig::default());
        let pid2 = m2
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(Context1::new(ctx1_limit * 2)),
            )
            .expect("spawn");
        m2.run();
        assert_eq!(m2.exit_code(pid2), Some(0));
        let context1_ms = m2.now() / 1e6;

        rows.push(Fig9Row {
            system: sys.label(),
            spawn_ms,
            context1_ms,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 3-5: the Redis sweep.
// ---------------------------------------------------------------------------

/// One cell of the Redis sweep (one system at one database size).
#[derive(Clone, Debug)]
pub struct RedisRow {
    /// System label.
    pub system: String,
    /// Database size in bytes.
    pub db_bytes: u64,
    /// Overall BGSAVE duration (Figure 3), ms.
    pub save_ms: f64,
    /// fork(2) latency (Figure 4), µs.
    pub fork_us: f64,
    /// Memory consumed by the forked process (Figure 5), MB: physical
    /// frames newly allocated on behalf of the fork (peak − at fork).
    pub mem_mb: f64,
}

/// The database sizes of the paper's sweep: 100 KB → 100 MB.
pub fn redis_sizes() -> Vec<(u64, u64)> {
    // (entries, value bytes): values are 100 KB as in the paper.
    vec![(1, 100_000), (10, 100_000), (100, 100_000), (1000, 100_000)]
}

/// The system variants of Figures 3–5.
pub fn redis_systems() -> Vec<Sys> {
    vec![
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault),
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Full), // +TOCTTOU
        Sys::Ufork(CopyStrategy::CoA, IsolationLevel::Fault),
        Sys::Ufork(CopyStrategy::Full, IsolationLevel::Fault),
        Sys::Mono,
    ]
}

/// Runs one Redis snapshot experiment.
pub fn redis_run(sys: Sys, entries: u64, val_bytes: u64) -> RedisRow {
    let mut rcfg = RedisConfig::sized(entries, val_bytes);
    if sys == Sys::Mono {
        // CheriBSD's allocator dirties heavily in the forked child
        // (paper §5.1: 56 MB at 100 MB DB, vs 7 MB on Linux).
        rcfg.child_scratch_fraction = 0.55;
    }
    let db = rcfg.db_bytes();
    let scratch = (rcfg.db_bytes() as f64 * rcfg.child_scratch_fraction) as u64;
    let img = ImageSpec::with_heap("redis", rcfg.heap_bytes() + scratch + (scratch / 4));
    let phys = ((3 * rcfg.heap_bytes() + rcfg.db_bytes()) / (1 << 20) + 128) as u32;
    let mut m = AnyMachine::build(sys, phys, MachineConfig::default());
    let pid = m
        .spawn(&img, Box::new(RedisServer::new(rcfg)))
        .expect("spawn redis");
    // Run to the fork, noting the allocation level just before the step
    // that performs it (the fork's own eager copies count as consumption).
    let mut at_fork_frames = m.allocated_frames();
    while m.fork_log().is_empty() {
        at_fork_frames = m.allocated_frames();
        if !m.step() {
            break;
        }
    }
    assert!(!m.fork_log().is_empty(), "{}: no fork", sys.label());
    let f = m.fork_log()[0];
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "{}", sys.label());
    let prog = m.program::<RedisServer>(pid).expect("program state");
    let save_ms = (prog.bgsave_finished - prog.bgsave_started) / 1e6;
    let extra_frames = m.peak_frames().saturating_sub(at_fork_frames);
    RedisRow {
        system: sys.label(),
        db_bytes: db,
        save_ms,
        fork_us: f.latency_ns / 1e3,
        mem_mb: f64::from(extra_frames) * PAGE_SIZE as f64 / (1 << 20) as f64,
    }
}

/// The full Figures 3–5 sweep.
pub fn redis_sweep() -> Vec<RedisRow> {
    let mut rows = Vec::new();
    for (entries, val) in redis_sizes() {
        for sys in redis_systems() {
            rows.push(redis_run(sys, entries, val));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 6: FaaS function throughput.
// ---------------------------------------------------------------------------

/// One Figure 6 row.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// System label.
    pub system: String,
    /// Worker cores.
    pub cores: u32,
    /// Functions per second.
    pub throughput: f64,
}

/// Runs the Zygote FaaS experiment for 1..=3 worker cores.
pub fn fig6(window_ns: f64) -> Vec<Fig6Row> {
    let systems = [
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault),
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Full),
        Sys::Mono,
    ];
    let mut rows = Vec::new();
    for cores in 1..=3u32 {
        for sys in systems {
            let mcfg = MachineConfig {
                cores: cores as usize + 1,
                child_affinity: Some((1..=cores as usize).collect()),
                ..MachineConfig::default()
            };
            let mut m = AnyMachine::build(sys, 512, mcfg);
            let mut fcfg = FaasConfig::for_cores(cores);
            fcfg.window_ns = window_ns;
            let img = ImageSpec::with_heap("micropython", 2 << 20);
            let pid = m
                .spawn(&img, Box::new(Zygote::new(fcfg)))
                .expect("spawn zygote");
            m.set_affinity(pid, vec![0]);
            m.run();
            assert_eq!(m.exit_code(pid), Some(0), "{}", sys.label());
            let z = m.program::<Zygote>(pid).expect("zygote state");
            rows.push(Fig6Row {
                system: sys.label(),
                cores,
                throughput: z.completed as f64 / (window_ns / 1e9),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7: Nginx throughput.
// ---------------------------------------------------------------------------

/// One Figure 7 row.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// System label.
    pub system: String,
    /// Machine cores.
    pub cores: u32,
    /// Worker processes.
    pub workers: u32,
    /// Requests per second.
    pub throughput: f64,
}

/// Runs one Nginx configuration.
pub fn nginx_run(sys: Sys, cores: u32, workers: u32, window_ns: f64) -> Fig7Row {
    let mcfg = MachineConfig {
        cores: cores as usize,
        time_limit: Some(window_ns),
        ..MachineConfig::default()
    };
    let mut m = AnyMachine::build(sys, 512, mcfg);
    let img = ImageSpec::with_heap("nginx", 4 << 20);
    let ncfg = NginxConfig {
        workers,
        ..NginxConfig::default()
    };
    // The listener fd is the first fd (3) installed on the master.
    let template = ConnTemplate {
        requests_per_conn: 64,
        req_bytes: 128,
        think_ns: 4_500.0,
    };
    let program = Nginx::new(ncfg, Fd(3));
    let pid = m.spawn(&img, Box::new(program)).expect("spawn nginx");
    m.install_listener(pid, template, u64::MAX / 2)
        .expect("listener");
    m.run();
    let served = m.total_served();
    Fig7Row {
        system: sys.label(),
        cores,
        workers,
        throughput: served as f64 / (window_ns / 1e9),
    }
}

/// The full Figure 7 sweep.
pub fn fig7(window_ns: f64) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    // μFork: single core, 1..3 workers (paper: multicore Unikraft SMP is
    // immature; single core demonstrates the worker-yield benefit).
    for workers in 1..=3 {
        rows.push(nginx_run(
            Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault),
            1,
            workers,
            window_ns,
        ));
    }
    // μFork with TOCTTOU, 3 workers (the -6.5% datapoint).
    rows.push(nginx_run(
        Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Full),
        1,
        3,
        window_ns,
    ));
    // Supplementary (not in the paper's figure): μFork across cores —
    // Unikraft's big kernel lock caps the scaling, which is why the paper
    // shows single-core numbers only.
    for cores in 2..=3 {
        rows.push(nginx_run(
            Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault),
            cores,
            3,
            window_ns,
        ));
    }
    // CheriBSD: scaling across cores (workers == cores)...
    for w in 1..=3 {
        rows.push(nginx_run(Sys::Mono, w, w, window_ns));
    }
    // ...and restricted to one core with 3 workers.
    rows.push(nginx_run(Sys::Mono, 1, 3, window_ns));
    rows
}

// ---------------------------------------------------------------------------
// Fork scaling: the parallel walk's 1/2/4/8-worker sweep.
// ---------------------------------------------------------------------------

/// Heap pages forked by the scaling sweep — 14 chunks of 32 pages, so
/// every worker count in the sweep gets a multi-chunk walk.
pub const SCALING_PAGES: u64 = 448;

/// One cell of the fork-scaling sweep: one heap shape forked under one
/// walk mode, measured in *simulated* nanoseconds (deterministic — the
/// same configuration always reproduces the same value bit for bit).
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Heap shape: `"cap-dense"` (128 caps/page) or `"cap-sparse"`
    /// (1 cap/page).
    pub heap: &'static str,
    /// Walk mode of the run.
    pub walk: WalkMode,
    /// Walk workers; 0 is the serial-walk ablation, 1 the pipelined
    /// walk's single streaming lane.
    pub workers: usize,
    /// Simulated fork latency (kernel time), ns. For the pipelined walk
    /// this is the *commit* latency — the child is runnable here.
    pub sim_fork_ns: f64,
    /// Simulated time until the child's copy is complete, ns. Equals
    /// `sim_fork_ns` for every non-pipelined walk; for the pipelined
    /// walk it adds the drained background window.
    pub sim_copy_done_ns: f64,
    /// Chunks the walk was partitioned into (0 for the serial walk).
    pub chunks: u64,
    /// Cross-shard steals the fork's allocations needed.
    pub steals: u64,
    /// Frames served from the recycled pools.
    pub recycled: u64,
    /// Recycled frames whose scrub was skipped (full-copy destinations).
    pub zeroing_skipped: u64,
    /// Cumulative allocator shard statistics after the fork.
    pub shard: ShardStats,
}

impl ScalingRow {
    /// Short mode label for tables and JSON: `serial`, `par1`, ...
    /// `par8`, `pipelined`.
    pub fn mode_label(&self) -> String {
        match self.walk {
            WalkMode::Serial => "serial".to_string(),
            WalkMode::Pipelined => "pipelined".to_string(),
            WalkMode::Parallel(n) => format!("par{}", n.max(1)),
        }
    }
}

/// Shared core of the scaling/frontier sweeps: builds the cap-dense or
/// cap-sparse heap, forks under `(strategy, walk)`, then drains any
/// pipelined background window on the same context. Returns the kernel,
/// the fork context (commit + drain charges), and the commit latency
/// alone.
fn scaling_fork(strategy: CopyStrategy, walk: WalkMode, dense: bool) -> (UforkOs, Ctx, f64) {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        walk,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let img = ImageSpec::with_heap("scaling", SCALING_PAGES * PAGE_SIZE + (256 << 10));
    os.spawn(&mut ctx, Pid(1), &img).expect("spawn scaling");
    let heap_bytes = SCALING_PAGES * PAGE_SIZE;
    let arr = os.malloc(&mut ctx, Pid(1), heap_bytes).expect("heap");
    // Dense: a capability every 32 bytes (128/page, every tag word hot).
    // Sparse: one per page (the tag-summary scan's fast case).
    let step = if dense { 32 } else { PAGE_SIZE };
    let mut off = 0;
    while off < heap_bytes {
        let slot = arr.with_addr(arr.base() + off).expect("slot");
        os.store_cap(&mut ctx, Pid(1), &slot, &slot)
            .expect("store cap");
        off += step;
    }
    os.set_reg(Pid(1), 4, arr).expect("reg");

    let mut fctx = Ctx::new();
    os.fork(&mut fctx, Pid(1), Pid(2)).expect("fork scaling");
    let commit_ns = fctx.kernel_ns;
    // No-op for every walk but Pipelined: stream the rest of the copy.
    os.pipeline_drain(&mut fctx, Pid(2)).expect("drain scaling");
    (os, fctx, commit_ns)
}

/// Forks a μprocess whose heap is populated densely or sparsely with
/// capabilities under the given walk mode and reports the fork's
/// simulated latency plus the parallel-walk counter family.
pub fn fork_scaling_run(walk: WalkMode, dense: bool) -> ScalingRow {
    let (os, fctx, commit_ns) = scaling_fork(CopyStrategy::Full, walk, dense);
    // Shard stats ride along on the ordinary per-process memory stats.
    let shard = os.mem_stats(Pid(2)).alloc;
    ScalingRow {
        heap: if dense { "cap-dense" } else { "cap-sparse" },
        walk,
        workers: match walk {
            WalkMode::Serial => 0,
            WalkMode::Pipelined => 1,
            WalkMode::Parallel(n) => n.max(1),
        },
        sim_fork_ns: commit_ns,
        sim_copy_done_ns: fctx.kernel_ns,
        chunks: fctx.counters.fork_chunks,
        steals: fctx.counters.alloc_steals,
        recycled: fctx.counters.frames_recycled,
        zeroing_skipped: fctx.counters.zeroing_skipped,
        shard,
    }
}

/// The walk modes of the scaling sweep: the serial ablation, 1, 2, 4
/// and 8 workers, and the pipelined walk (whose `sim_fork_ns` is the
/// commit latency and `sim_copy_done_ns` the full window).
pub fn scaling_walk_modes() -> Vec<WalkMode> {
    vec![
        WalkMode::Serial,
        WalkMode::Parallel(1),
        WalkMode::Parallel(2),
        WalkMode::Parallel(4),
        WalkMode::Parallel(8),
        WalkMode::Pipelined,
    ]
}

/// The full scaling sweep: {cap-sparse, cap-dense} × {serial, 1, 2, 4,
/// 8 workers, pipelined}.
pub fn fork_scaling_sweep() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for dense in [false, true] {
        for walk in scaling_walk_modes() {
            rows.push(fork_scaling_run(walk, dense));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Pipelined-fork latency frontier: commit latency vs time-to-copy-complete.
// ---------------------------------------------------------------------------

/// One point of the fork latency frontier: a single fork of the scaling
/// workload under one (strategy, walk) mode, reported as the latency the
/// child waits before running (`commit_ns`) and the latency until its
/// memory is fully private (`copy_done_ns`). Both are simulated and
/// bit-reproducible.
///
/// The lazy strategies never finish the copy eagerly, so their
/// `copy_done_ns` equals `commit_ns` — the frontier makes the pipelined
/// trade visible: CoPA-grade commit latency *and* a bounded,
/// background-paid time to a fully copied child.
#[derive(Clone, Copy, Debug)]
pub struct FrontierRow {
    /// Mode label: `full`, `full_par8`, `pipelined`, `coa`, `copa`.
    pub mode: &'static str,
    /// Heap shape: `cap-dense` or `cap-sparse`.
    pub heap: &'static str,
    /// Simulated fork latency as the child observes it, ns.
    pub commit_ns: f64,
    /// Simulated time until the child's span is fully copied (equals
    /// `commit_ns` when nothing is deferred), ns.
    pub copy_done_ns: f64,
}

/// The frontier's mode axis.
pub fn frontier_modes() -> Vec<(&'static str, CopyStrategy, WalkMode)> {
    vec![
        ("full", CopyStrategy::Full, WalkMode::Serial),
        ("full_par8", CopyStrategy::Full, WalkMode::Parallel(8)),
        ("pipelined", CopyStrategy::Full, WalkMode::Pipelined),
        ("coa", CopyStrategy::CoA, WalkMode::Serial),
        ("copa", CopyStrategy::CoPA, WalkMode::Serial),
    ]
}

/// One frontier point.
pub fn frontier_run(
    mode: &'static str,
    strategy: CopyStrategy,
    walk: WalkMode,
    dense: bool,
) -> FrontierRow {
    let (_, fctx, commit_ns) = scaling_fork(strategy, walk, dense);
    FrontierRow {
        mode,
        heap: if dense { "cap-dense" } else { "cap-sparse" },
        commit_ns,
        copy_done_ns: fctx.kernel_ns,
    }
}

/// The full frontier: {cap-sparse, cap-dense} × {full, full_par8,
/// pipelined, coa, copa}.
pub fn fork_frontier_sweep() -> Vec<FrontierRow> {
    let mut rows = Vec::new();
    for dense in [false, true] {
        for (mode, strategy, walk) in frontier_modes() {
            rows.push(frontier_run(mode, strategy, walk, dense));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Memory-pressure fork storm (`repro pressure`).
// ---------------------------------------------------------------------------

/// One row of the `repro pressure` report: a deterministic fork storm on
/// a small machine under one admission fallback policy, run until the
/// first fork is refused with `NoMem`.
pub struct PressureRow {
    /// Fallback policy label (`disabled`, `strict`, `degrade`).
    pub policy: &'static str,
    /// Forks that succeeded before the first refusal.
    pub forks_ok: u64,
    /// Forks admitted under a cheaper strategy than requested.
    pub forks_degraded: u64,
    /// Journal rollbacks (fork attempts undone mid-walk).
    pub fork_rollbacks: u64,
    /// Inline reclaim passes between rollback and retry (hot path).
    pub reclaim_inline: u64,
    /// Background reclaim batches run by the daemon (off the hot path).
    pub reclaim_background: u64,
    /// Zeroed allocations served pre-scrubbed from a clean-frame magazine.
    pub magazine_hits: u64,
    /// μprocesses killed by the OOM last resort.
    pub oom_kills: u64,
    /// Journal ops recorded across the storm (committed + rolled back).
    pub journal_ops: u64,
    /// Simulated ns spent in reclaim backoff.
    pub fork_backoff_ns: u64,
    /// Allocator pressure level when the storm ended.
    pub pressure: String,
}

/// Storms one policy: Full-strategy forks of a cap-dense parent on a
/// 4 MiB machine until the allocator refuses, then reports the journal /
/// admission counter family and the final pressure level.
pub fn pressure_storm_run(policy: FallbackPolicy) -> PressureRow {
    const HEAP_PAGES: u64 = 16;
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 4,
        strategy: CopyStrategy::Full,
        fallback: policy,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let img = ImageSpec::with_heap("pressure", HEAP_PAGES * PAGE_SIZE + (64 << 10));
    os.spawn(&mut ctx, Pid(1), &img).expect("spawn pressure");
    let arr = os
        .malloc(&mut ctx, Pid(1), HEAP_PAGES * PAGE_SIZE)
        .expect("heap");
    for p in 0..HEAP_PAGES {
        let slot = arr.with_addr(arr.base() + p * PAGE_SIZE).expect("slot");
        os.store_cap(&mut ctx, Pid(1), &slot, &slot).expect("cap");
    }

    let mut sctx = Ctx::new();
    let mut forks_ok = 0u64;
    for n in 2..=1024u32 {
        match os.fork(&mut sctx, Pid(1), Pid(n)) {
            Ok(()) => forks_ok += 1,
            Err(_) => break,
        }
    }
    let stats = os.mem_stats(Pid(1));
    PressureRow {
        policy: match policy {
            FallbackPolicy::Disabled => "disabled",
            FallbackPolicy::Strict => "strict",
            FallbackPolicy::Degrade => "degrade",
        },
        forks_ok,
        forks_degraded: sctx.counters.forks_degraded,
        fork_rollbacks: sctx.counters.fork_rollbacks,
        reclaim_inline: sctx.counters.reclaim_inline,
        reclaim_background: sctx.counters.reclaim_background,
        magazine_hits: sctx.counters.magazine_hits,
        oom_kills: sctx.counters.oom_kills,
        journal_ops: sctx.counters.journal_ops,
        fork_backoff_ns: sctx.counters.fork_backoff_ns,
        pressure: format!("{:?}", stats.pressure),
    }
}

/// The full pressure report: one storm per fallback policy.
pub fn pressure_storm() -> Vec<PressureRow> {
    [
        FallbackPolicy::Disabled,
        FallbackPolicy::Strict,
        FallbackPolicy::Degrade,
    ]
    .into_iter()
    .map(pressure_storm_run)
    .collect()
}

// ---------------------------------------------------------------------------
// Table 1 (qualitative).
// ---------------------------------------------------------------------------

/// The qualitative comparison of Table 1, as printable rows.
pub fn table1() -> Vec<[&'static str; 7]> {
    vec![
        [
            "System",
            "SAS",
            "Isolation",
            "SC",
            "IPCs",
            "Seg",
            "f+e only",
        ],
        ["Angel", "Yes", "Yes", "Yes", "Fast", "Yes", "No"],
        ["Mungi", "Yes", "Yes", "Yes", "Fast", "Yes", "No"],
        ["Nephele", "No", "Yes", "No", "Med", "No", "No"],
        ["KylinX", "No", "Yes", "No", "Med", "No", "No"],
        ["Graphene", "No", "Yes", "No", "Med", "No", "No"],
        ["Graphene SGX", "No", "Yes", "No", "Slow", "No", "No"],
        ["Iso-Unik", "No", "Yes", "Yes", "Med", "No", "No"],
        ["OSv", "Yes", "No", "Yes", "Fast", "No", "Yes"],
        ["Junction", "Yes", "No", "No", "Med", "No", "Yes"],
        ["μFork (this work)", "Yes", "Yes", "Yes", "Fast", "No", "No"],
    ]
}
