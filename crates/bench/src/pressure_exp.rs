//! The `fork_pressure` family: the event-driven fork storm swept across
//! allocator occupancy × reclaim daemon, certifying the PR's survival
//! gate — fork p99 stays flat (≤ [`PRESSURE_P99_LIMIT`]×) when the storm
//! crosses the high pressure watermark with the background reclaim
//! daemon on. The daemon-off run at the same occupancy is kept as the
//! ablation baseline: there every recycled frame charges its zeroing
//! scrub inline on the fork path.
//!
//! Unlike the peak-overlap storm (`fork_storm`), this storm *churns*:
//! services are short enough that children exit while later ones are
//! still arriving, so freed frames are continuously recycled into new
//! forks — exactly the regime where pre-zeroed magazines pay off.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::CopyStrategy;
use ufork_exec::{Machine, MachineConfig, MemOs};
use ufork_workloads::storm::{summarize, StormConfig, StormZygote};

use crate::storm::storm_image;

/// The survival gate: crossing the high watermark with the daemon on may
/// cost fork p99 at most this factor over the low-occupancy storm.
pub const PRESSURE_P99_LIMIT: f64 = 1.25;

/// One row of the `fork_pressure` sweep.
#[derive(Clone, Debug)]
pub struct PressureStormRow {
    /// `low` (comfortably Normal) or `high` (Elevated throughout).
    pub occupancy: &'static str,
    /// Background reclaim daemon armed.
    pub daemon: bool,
    /// Children stormed (part of the gate key: smoke scales must not be
    /// compared against the committed full-scale baseline).
    pub children: u32,
    /// Median fork latency (ns, simulated).
    pub sim_p50_ns: f64,
    /// 99th-percentile fork latency (ns, simulated).
    pub sim_p99_ns: f64,
    /// Storm makespan (ns, simulated).
    pub sim_final_ns: f64,
    /// Background reclaim passes the daemon ran.
    pub reclaim_background: u64,
    /// Frames the daemon scrubbed into clean-frame magazines.
    pub frames_prezeroed: u64,
    /// Fork-path allocations served pre-zeroed from a magazine.
    pub magazine_hits: u64,
    /// Inline reclaim passes forced onto the fork path.
    pub reclaim_inline: u64,
    /// OOM kills (the storm is sized so none are needed; reported so a
    /// sizing regression is visible in the JSON).
    pub oom_kills: u64,
    /// Order-sensitive digest of the fork/exit event history.
    pub digest: u64,
}

/// One occupancy point of the sweep.
struct OccupancyPoint {
    label: &'static str,
    phys_mib: u32,
    /// Forced watermarks (`None` keeps the allocator defaults). The
    /// `high` point pins the hysteretic level at Elevated from the first
    /// few children on, without shrinking physical memory into actual
    /// exhaustion — the gate measures the *zeroing* tax, not OOM.
    watermarks: Option<(u32, u32)>,
}

const POINTS: [OccupancyPoint; 2] = [
    OccupancyPoint {
        label: "low",
        phys_mib: 256,
        watermarks: None,
    },
    OccupancyPoint {
        label: "high",
        phys_mib: 24,
        watermarks: Some((64, 6100)),
    },
];

/// Runs one churning storm and distills the row.
fn run_point(
    point: &OccupancyPoint,
    daemon: bool,
    children: u32,
    seed: u64,
    cores: usize,
) -> PressureStormRow {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: point.phys_mib,
        strategy: CopyStrategy::Full,
        walk: WalkMode::Serial,
        reclaim_daemon: daemon,
        ..UforkConfig::default()
    });
    if let Some((low, high)) = point.watermarks {
        os.set_pressure_watermarks(low, high);
    }
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores,
            oom_kill: true,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &storm_image(),
            Box::new(StormZygote::new(StormConfig {
                // Churn: ~20 live children in steady state, exits
                // interleaved with arrivals for the whole storm.
                service_base_ns: 2e6,
                service_jitter_mean_ns: 0.5e6,
                ..StormConfig::standard(children, seed)
            })),
        )
        .expect("spawn pressure zygote");
    m.run();
    let label = format!("fork_pressure/{}/daemon={daemon}", point.label);
    assert_eq!(m.exit_code(pid), Some(0), "{label}: zygote failed");
    let z = m.program::<StormZygote>(pid).expect("zygote state");
    let report = summarize(pid, m.fork_log(), m.exit_log(), z, m.now());
    assert_eq!(report.completed, children, "{label}: lost children");
    assert_eq!(report.retries, 0, "{label}: storm-visible fork failure");
    assert_eq!(
        m.os.allocated_frames(),
        0,
        "{label}: leaked frames after all exits"
    );
    let c = m.counters();
    PressureStormRow {
        occupancy: point.label,
        daemon,
        children,
        sim_p50_ns: report.p50_fork_ns,
        sim_p99_ns: report.p99_fork_ns,
        sim_final_ns: report.final_ns,
        reclaim_background: c.reclaim_background,
        frames_prezeroed: c.frames_prezeroed,
        magazine_hits: c.magazine_hits,
        reclaim_inline: c.reclaim_inline,
        oom_kills: c.oom_kills,
        digest: report.digest,
    }
}

/// Runs the occupancy × daemon sweep, each point twice (asserting the
/// two runs bit-identical), and enforces the family's invariants:
///
/// * at low occupancy the daemon is *invisible* — the daemon-on and
///   daemon-off runs produce bit-identical schedules and latencies;
/// * at high occupancy the daemon engages (background passes, scrubbed
///   frames, and magazine hits on the fork path all nonzero) while the
///   daemon-off ablation runs zero background passes;
/// * the survival gate: high-occupancy daemon-on fork p99 stays within
///   [`PRESSURE_P99_LIMIT`]× the low-occupancy p99.
pub fn pressure_sweep(children: u32, seed: u64, cores: usize) -> Vec<PressureStormRow> {
    let mut rows = Vec::new();
    for point in &POINTS {
        for daemon in [false, true] {
            let a = run_point(point, daemon, children, seed, cores);
            let b = run_point(point, daemon, children, seed, cores);
            assert_eq!(
                a.digest, b.digest,
                "fork_pressure/{}/daemon={daemon} event log is nondeterministic",
                point.label
            );
            assert_eq!(a.sim_p50_ns.to_bits(), b.sim_p50_ns.to_bits());
            assert_eq!(a.sim_p99_ns.to_bits(), b.sim_p99_ns.to_bits());
            assert_eq!(a.sim_final_ns.to_bits(), b.sim_final_ns.to_bits());
            rows.push(a);
        }
    }
    let pick = |occupancy: &str, daemon: bool| {
        rows.iter()
            .find(|r| r.occupancy == occupancy && r.daemon == daemon)
            .expect("pressure row")
    };
    // Low occupancy: pressure never leaves Normal, so arming the daemon
    // must not change a single bit of the schedule.
    let (lo_off, lo_on) = (pick("low", false), pick("low", true));
    assert_eq!(
        (lo_off.digest, lo_off.sim_final_ns.to_bits()),
        (lo_on.digest, lo_on.sim_final_ns.to_bits()),
        "fork_pressure/low: an idle reclaim daemon perturbed the schedule"
    );
    assert_eq!(
        lo_on.reclaim_background, 0,
        "fork_pressure/low: daemon ran without pressure"
    );
    // High occupancy: the daemon must actually do the work the gate
    // credits it for, and the ablation must not.
    let (hi_off, hi_on) = (pick("high", false), pick("high", true));
    assert!(
        hi_on.reclaim_background > 0 && hi_on.frames_prezeroed > 0 && hi_on.magazine_hits > 0,
        "fork_pressure/high/daemon=true: daemon never engaged \
         (passes {}, prezeroed {}, hits {})",
        hi_on.reclaim_background,
        hi_on.frames_prezeroed,
        hi_on.magazine_hits
    );
    assert_eq!(
        (hi_off.reclaim_background, hi_off.magazine_hits),
        (0, 0),
        "fork_pressure/high/daemon=false: ablation run used the daemon"
    );
    let ratio = hi_on.sim_p99_ns / lo_on.sim_p99_ns;
    assert!(
        ratio <= PRESSURE_P99_LIMIT,
        "fork_pressure: fork p99 across the high watermark ({:.0} ns) is {ratio:.3}x \
         the low-occupancy p99 ({:.0} ns); must stay <= {PRESSURE_P99_LIMIT}x with the daemon on",
        hi_on.sim_p99_ns,
        lo_on.sim_p99_ns
    );
    rows
}

/// Pressure-storm scale from the environment
/// (`BENCH_PRESSURE_CHILDREN`); CI smoke jobs set a reduced N.
pub fn pressure_children_from_env() -> u32 {
    std::env::var("BENCH_PRESSURE_CHILDREN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

/// The pressure storm's default seed (distinct from the overlap storm's
/// so the two families never share an event history).
pub const PRESSURE_SEED: u64 = 0x9E55_0A21;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pressure_sweep_holds_the_gate() {
        // The sweep asserts everything itself — determinism, daemon
        // invisibility at Normal, engagement at Elevated, and the p99
        // gate; a reduced N keeps `cargo test` fast.
        let rows = pressure_sweep(150, PRESSURE_SEED, 4);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.sim_p50_ns > 0.0 && r.sim_p99_ns >= r.sim_p50_ns);
            assert_eq!(r.oom_kills, 0, "pressure storm is sized to avoid kills");
        }
    }
}
