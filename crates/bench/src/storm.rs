//! The fork-storm benchmark: 10k concurrent μprocesses through the
//! event-driven scheduler, across the paper's copy strategies.
//!
//! Unlike the Figure 6 FaaS experiment (steady-state, bounded
//! outstanding workers), the storm measures the machine itself under
//! maximum process-table pressure: every child is alive when the last
//! one is born. Reported metrics are *simulated* time — fork p50/p99
//! latency and forks per simulated second — so every row is exactly
//! reproducible and `bench_gate.py` holds them to the strict threshold.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, ImageSpec};
use ufork_exec::{Machine, MachineConfig, MemOs};
use ufork_workloads::storm::{summarize, StormConfig, StormReport, StormZygote};

/// One storm configuration (mode) of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct StormMode {
    /// Row label in BENCH_fork.json.
    pub label: &'static str,
    /// Copy strategy under test.
    pub strategy: CopyStrategy,
    /// Copy/zeroing walk mode.
    pub walk: WalkMode,
}

/// The swept modes: eager copy serial, 8-worker parallel and pipelined
/// (commit early, copy behind the child), then the two lazy strategies.
pub fn storm_modes() -> Vec<StormMode> {
    vec![
        StormMode {
            label: "full_serial",
            strategy: CopyStrategy::Full,
            walk: WalkMode::Serial,
        },
        StormMode {
            label: "full_par8",
            strategy: CopyStrategy::Full,
            walk: WalkMode::Parallel(8),
        },
        StormMode {
            label: "full_pipelined",
            strategy: CopyStrategy::Full,
            walk: WalkMode::Pipelined,
        },
        StormMode {
            label: "coa",
            strategy: CopyStrategy::CoA,
            walk: WalkMode::Serial,
        },
        StormMode {
            label: "copa",
            strategy: CopyStrategy::CoPA,
            walk: WalkMode::Serial,
        },
    ]
}

/// Background-copy statistics of one storm run, distilled from the
/// machine's [`ufork_exec::PipelineEvent`] log. All-zero for every
/// non-pipelined mode.
#[derive(Clone, Copy, Debug, Default)]
pub struct StormPipeline {
    /// Background windows opened *and* closed while the child lived.
    pub windows: u64,
    /// Median time from fork commit to copy complete (ns, simulated).
    pub p50_copy_done_ns: f64,
    /// 99th-percentile time from fork commit to copy complete (ns).
    pub p99_copy_done_ns: f64,
}

/// Nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The storm's function image. Deliberately tiny (a few pages): the
/// storm exists to stress *process count*, not per-process footprint —
/// 10k full-copy children of this image fit comfortably in a 1 GiB
/// simulated machine.
pub fn storm_image() -> ImageSpec {
    ImageSpec {
        name: "storm-fn".into(),
        text_bytes: 8 * 1024,
        data_bytes: 4 * 1024,
        heap_bytes: 16 * 1024,
        stack_bytes: 8 * 1024,
        got_slots: 16,
    }
}

/// Runs one storm to completion and distills its report.
///
/// Panics if the storm does not complete cleanly — a storm that loses
/// children is a scheduler bug, not a data point.
pub fn run_storm(mode: &StormMode, children: u32, seed: u64, cores: usize) -> StormReport {
    run_storm_full(mode, children, seed, cores).0
}

/// [`run_storm`] plus the pipelined background-copy statistics.
pub fn run_storm_full(
    mode: &StormMode,
    children: u32,
    seed: u64,
    cores: usize,
) -> (StormReport, StormPipeline) {
    let os = UforkOs::new(UforkConfig {
        phys_mib: 1024,
        strategy: mode.strategy,
        walk: mode.walk,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores,
            ..MachineConfig::default()
        },
    );
    let zcfg = StormConfig::standard(children, seed);
    let pid = m
        .spawn(&storm_image(), Box::new(StormZygote::new(zcfg)))
        .expect("spawn storm zygote");
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "storm/{} zygote", mode.label);
    let z = m.program::<StormZygote>(pid).expect("zygote state");
    let report = summarize(pid, m.fork_log(), m.exit_log(), z, m.now());
    assert_eq!(
        report.completed, children,
        "storm/{}: lost children",
        mode.label
    );
    assert_eq!(
        report.peak_live, children,
        "storm/{}: children did not fully overlap",
        mode.label
    );
    assert_eq!(
        m.os.allocated_frames(),
        0,
        "storm/{}: leaked frames after all exits",
        mode.label
    );
    let mut behind: Vec<f64> = m
        .pipeline_log()
        .iter()
        .map(|e| e.done_at - e.committed_at)
        .collect();
    behind.sort_unstable_by(f64::total_cmp);
    let pipeline = StormPipeline {
        windows: behind.len() as u64,
        p50_copy_done_ns: percentile(&behind, 0.50),
        p99_copy_done_ns: percentile(&behind, 0.99),
    };
    if mode.walk == WalkMode::Pipelined {
        assert!(
            pipeline.windows > 0,
            "storm/{}: pipelined storm logged no background-copy windows",
            mode.label
        );
    }
    (report, pipeline)
}

/// Runs the full mode sweep at the given scale, executing every mode
/// twice and asserting the two runs are bit-identical (event-log digest,
/// final simulated time, p50/p99, copy-completion percentiles) — the
/// storm's determinism contract.
pub fn storm_sweep(
    children: u32,
    seed: u64,
    cores: usize,
) -> Vec<(StormMode, StormReport, StormPipeline)> {
    storm_modes()
        .into_iter()
        .map(|mode| {
            let (a, pa) = run_storm_full(&mode, children, seed, cores);
            let (b, pb) = run_storm_full(&mode, children, seed, cores);
            assert_eq!(
                a.digest, b.digest,
                "fork_storm/{} event log is nondeterministic",
                mode.label
            );
            assert_eq!(a.final_ns.to_bits(), b.final_ns.to_bits());
            assert_eq!(a.p50_fork_ns.to_bits(), b.p50_fork_ns.to_bits());
            assert_eq!(a.p99_fork_ns.to_bits(), b.p99_fork_ns.to_bits());
            assert_eq!(pa.windows, pb.windows);
            assert_eq!(pa.p50_copy_done_ns.to_bits(), pb.p50_copy_done_ns.to_bits());
            assert_eq!(pa.p99_copy_done_ns.to_bits(), pb.p99_copy_done_ns.to_bits());
            (mode, a, pa)
        })
        .collect()
}

/// Storm scale from the environment (`BENCH_STORM_CHILDREN`), defaulting
/// to the paper-scale 10 000. CI smoke jobs set a reduced N.
pub fn storm_children_from_env() -> u32 {
    std::env::var("BENCH_STORM_CHILDREN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// The storm's default core count (one coordinator + seven workers'
/// worth of lanes; children inherit no affinity and spread freely).
pub const STORM_CORES: usize = 8;

/// The storm's default seed.
pub const STORM_SEED: u64 = 0x5703_2024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_completes_and_overlaps() {
        let mode = StormMode {
            label: "copa",
            strategy: CopyStrategy::CoPA,
            walk: WalkMode::Serial,
        };
        let r = run_storm(&mode, 200, 7, 4);
        assert_eq!(r.completed, 200);
        assert_eq!(r.peak_live, 200);
        assert_eq!(r.retries, 0);
        assert!(r.p50_fork_ns > 0.0 && r.p99_fork_ns >= r.p50_fork_ns);
        assert!(r.forks_per_sim_sec > 0.0);
    }

    #[test]
    fn storm_is_seed_deterministic_on_fixed_cores() {
        let mode = StormMode {
            label: "full_serial",
            strategy: CopyStrategy::Full,
            walk: WalkMode::Serial,
        };
        let a = run_storm(&mode, 120, 11, 2);
        let b = run_storm(&mode, 120, 11, 2);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.final_ns.to_bits(), b.final_ns.to_bits());
        let c = run_storm(&mode, 120, 12, 2);
        assert_ne!(a.digest, c.digest, "different seeds must diverge");
    }
}
