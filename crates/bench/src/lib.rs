//! Experiment harness regenerating every table and figure of the μFork
//! evaluation (paper §5).
//!
//! Each `figN` function runs the corresponding experiment in simulated
//! time and returns structured rows; the `repro` binary renders them as
//! the paper's tables/series. `EXPERIMENTS.md` records paper-vs-measured.

pub mod ablations;
pub mod experiments;
pub mod pressure_exp;
pub mod report;
pub mod ring_exp;
pub mod snapshot;
pub mod storm;
pub mod trace_exp;

pub use ablations::*;
pub use experiments::*;
pub use pressure_exp::*;
pub use ring_exp::*;
pub use snapshot::*;
pub use storm::*;
pub use trace_exp::*;
