//! Ablation studies of μFork's design choices (beyond the paper's own
//! CoPA/CoA/full-copy comparison, which lives in the Figure 4/5 sweep).

use ufork::{ScanMode, UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, IsolationLevel};
use ufork_exec::{Machine, MachineConfig};
use ufork_workloads::hello::HelloWorld;
use ufork_workloads::redis::{RedisConfig, RedisServer};
use ufork_workloads::shell::{Command, Shell};
use ufork_workloads::ubench::Context1;

/// One ablation row: a label and named measurements.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// `(metric name, value, unit)` triples.
    pub metrics: Vec<(String, f64, &'static str)>,
}

fn ufork_machine(cfg: UforkConfig) -> Machine<UforkOs> {
    Machine::new(UforkOs::new(cfg), MachineConfig::default())
}

/// A1 — `fork` vs `fork + exec`: what does state duplication cost over
/// plain program start (the vfork+exec pattern older SASOSes support)?
pub fn ablation_fork_vs_exec() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    // Plain fork.
    let mut m = ufork_machine(UforkConfig {
        phys_mib: 128,
        ..UforkConfig::default()
    });
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
        .expect("spawn");
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    rows.push(AblationRow {
        label: "fork (state duplicated)".into(),
        metrics: vec![("latency".into(), m.fork_log()[0].latency_ns / 1e3, "µs")],
    });
    // fork + exec.
    let mut m = ufork_machine(UforkConfig {
        phys_mib: 128,
        ..UforkConfig::default()
    });
    let cmd = Command {
        output: "ablate.out".into(),
        ops: 0,
        code: 0,
    };
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Shell::new(vec![cmd])))
        .expect("spawn");
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // fork latency + the exec that replaces the child image; approximate
    // the combined cost as child start-to-first-instruction.
    let f = m.fork_log()[0];
    let child_first_exit = m
        .exit_log()
        .iter()
        .find(|e| e.pid == f.child)
        .expect("command exited");
    rows.push(AblationRow {
        label: "fork + exec (image replaced)".into(),
        metrics: vec![
            ("fork latency".into(), f.latency_ns / 1e3, "µs"),
            (
                "fork→command exit".into(),
                (child_first_exit.at - f.at) / 1e3,
                "µs",
            ),
        ],
    });
    rows
}

/// A2 — isolation-level sweep: what does each protection layer cost on
/// fork latency and on a syscall-heavy IPC loop?
pub fn ablation_isolation_sweep() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for iso in [
        IsolationLevel::None,
        IsolationLevel::Fault,
        IsolationLevel::Full,
    ] {
        let mut m = ufork_machine(UforkConfig {
            phys_mib: 256,
            isolation: iso,
            ..UforkConfig::default()
        });
        let rcfg = RedisConfig::sized(100, 100_000); // 10 MB
        let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
        let pid = m
            .spawn(&img, Box::new(RedisServer::new(rcfg)))
            .expect("spawn");
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        let fork_us = m.fork_log()[0].latency_ns / 1e3;
        let save_ms = {
            let p = m.program::<RedisServer>(pid).expect("state");
            (p.bgsave_finished - p.bgsave_started) / 1e6
        };

        let mut m2 = ufork_machine(UforkConfig {
            phys_mib: 64,
            isolation: iso,
            ..UforkConfig::default()
        });
        let pid2 = m2
            .spawn(&ImageSpec::hello_world(), Box::new(Context1::new(10_000)))
            .expect("spawn");
        m2.run();
        assert_eq!(m2.exit_code(pid2), Some(0));

        rows.push(AblationRow {
            label: format!("{iso:?}"),
            metrics: vec![
                ("Redis 10MB fork".into(), fork_us, "µs"),
                ("Redis 10MB save".into(), save_ms, "ms"),
                ("Context1 5k RTs".into(), m2.now() / 1e6, "ms"),
            ],
        });
    }
    rows
}

/// A3 — eager vs lazy proactive copies: the paper copies GOT + allocator
/// metadata at fork; under CoPA they could equally be left to fault.
pub fn ablation_eager_vs_lazy() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for eager in [true, false] {
        let mut m = ufork_machine(UforkConfig {
            phys_mib: 256,
            strategy: CopyStrategy::CoPA,
            eager_fork_copies: eager,
            ..UforkConfig::default()
        });
        let rcfg = RedisConfig::sized(100, 100_000);
        let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
        let pid = m
            .spawn(&img, Box::new(RedisServer::new(rcfg)))
            .expect("spawn");
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        let p = m.program::<RedisServer>(pid).expect("state");
        rows.push(AblationRow {
            label: if eager {
                "eager GOT+metadata copy (paper §3.5)".into()
            } else {
                "lazy (CoPA faults on first use)".into()
            },
            metrics: vec![
                (
                    "fork latency".into(),
                    m.fork_log()[0].latency_ns / 1e3,
                    "µs",
                ),
                (
                    "save time".into(),
                    (p.bgsave_finished - p.bgsave_started) / 1e6,
                    "ms",
                ),
                (
                    "post-fork faults".into(),
                    (m.counters().cap_load_faults
                        + m.counters().cow_faults
                        + m.counters().coa_faults) as f64,
                    "",
                ),
            ],
        });
    }
    rows
}

/// A4 — ASLR: randomized region bases cost nothing at fork time (the
/// relocation delta is computed per fork anyway) — a free mitigation.
pub fn ablation_aslr() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for seed in [None, Some(7u64), Some(99u64)] {
        let mut m = ufork_machine(UforkConfig {
            phys_mib: 128,
            aslr_seed: seed,
            ..UforkConfig::default()
        });
        let pid = m
            .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
            .expect("spawn");
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        let label = match seed {
            None => "ASLR off".to_string(),
            Some(s) => format!("ASLR seed {s}"),
        };
        rows.push(AblationRow {
            label,
            metrics: vec![("hello fork".into(), m.fork_log()[0].latency_ns / 1e3, "µs")],
        });
    }
    rows
}

/// A5 — naive granule sweep vs tag-summary scan: the relocation engine
/// either inspects all 256 granules of every copied page (the paper's
/// sequential sweep) or reads the 4-word tag-occupancy bitmap first
/// (`CLoadTags`) and visits only set bits. Mostly-untagged pages dominate
/// real images, so the fast path skips almost every granule.
pub fn ablation_naive_scan() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (label, scan) in [
        ("naive granule sweep", ScanMode::Naive),
        ("tag-summary scan (CLoadTags)", ScanMode::TagSummary),
    ] {
        let mut m = ufork_machine(UforkConfig {
            phys_mib: 256,
            strategy: CopyStrategy::Full,
            scan,
            ..UforkConfig::default()
        });
        let rcfg = RedisConfig::sized(100, 100_000); // 10 MB
        let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
        let pid = m
            .spawn(&img, Box::new(RedisServer::new(rcfg)))
            .expect("spawn");
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        let c = m.counters();
        rows.push(AblationRow {
            label: label.into(),
            metrics: vec![
                (
                    "Redis 10MB fork".into(),
                    m.fork_log()[0].latency_ns / 1e3,
                    "µs",
                ),
                ("granules scanned".into(), c.granules_scanned as f64, ""),
                ("granules skipped".into(), c.granules_skipped as f64, ""),
                ("tag words loaded".into(), c.tag_words_loaded as f64, ""),
                ("region lookups".into(), c.region_lookups as f64, ""),
            ],
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_vs_exec_rows() {
        let rows = ablation_fork_vs_exec();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].metrics[0].1 > 0.0);
    }

    #[test]
    fn isolation_sweep_orders_costs() {
        let rows = ablation_isolation_sweep();
        assert_eq!(rows.len(), 3);
        // Full ≥ Fault on the syscall-heavy loop.
        let ctx1 = |r: &AblationRow| r.metrics[2].1;
        assert!(ctx1(&rows[2]) >= ctx1(&rows[1]));
    }

    #[test]
    fn lazy_copies_trade_fork_latency_for_faults() {
        let rows = ablation_eager_vs_lazy();
        let (eager, lazy) = (&rows[0], &rows[1]);
        // Lazy fork is faster...
        assert!(lazy.metrics[0].1 <= eager.metrics[0].1);
        // ...but takes more faults afterwards (the copies still happen,
        // just on demand).
        assert!(lazy.metrics[2].1 > eager.metrics[2].1);
    }

    #[test]
    fn tag_summary_beats_naive_sweep() {
        let rows = ablation_naive_scan();
        let (naive, fast) = (&rows[0], &rows[1]);
        // The fast path forks no slower in simulated time...
        assert!(fast.metrics[0].1 <= naive.metrics[0].1);
        // ...scans strictly fewer granules, and skips the rest via the
        // tag-occupancy words the naive sweep never reads.
        assert!(fast.metrics[1].1 < naive.metrics[1].1);
        assert!(fast.metrics[2].1 > 0.0);
        assert!(fast.metrics[3].1 > 0.0);
        assert_eq!(naive.metrics[3].1, 0.0);
    }

    #[test]
    fn aslr_is_free() {
        let rows = ablation_aslr();
        let base = rows[0].metrics[0].1;
        for r in &rows[1..] {
            let diff = (r.metrics[0].1 - base).abs() / base;
            assert!(diff < 0.02, "ASLR must not change fork latency: {diff}");
        }
    }
}
