//! `uforksim` — run any workload on any of the three simulated OSes.
//!
//! ```text
//! uforksim <workload> [options]
//!
//! workloads:
//!   hello                       fork once, exit
//!   spawn [N]                   Unixbench Spawn (default 1000)
//!   context1 [N]                Unixbench Context1 round trips (default 100000)
//!   redis [ENTRIES] [VAL_KB]    snapshot benchmark (default 100 x 100KB)
//!   faas [CORES]                Zygote FaaS window (default 2 worker cores)
//!   nginx [WORKERS]             web workers, 1 core (default 3)
//!   shell                       fork+exec demo
//!   forkserver [N]              fuzzing fork server (default 100 execs)
//!   privsep [N]                 privilege-separated broker (default 20 msgs)
//!
//! options:
//!   --os ufork|cheribsd|nephele   (default ufork)
//!   --strategy copa|coa|full      (default copa)
//!   --isolation none|fault|full   (default full)
//!   --cores N                     (default 1)
//!   --aslr SEED
//! ```

use std::env;
use std::process::exit;

use ufork_abi::{CopyStrategy, Fd, ImageSpec, IsolationLevel};
use ufork_bench::{AnyMachine, Sys};
use ufork_exec::{ConnTemplate, MachineConfig};
use ufork_workloads::faas::{FaasConfig, Zygote};
use ufork_workloads::forkserver::{ForkServer, ForkServerConfig};
use ufork_workloads::hello::HelloWorld;
use ufork_workloads::nginx::{Nginx, NginxConfig};
use ufork_workloads::privsep::{Privsep, PrivsepConfig};
use ufork_workloads::redis::{RedisConfig, RedisServer};
use ufork_workloads::shell::{Command, Shell};
use ufork_workloads::ubench::{Context1, SpawnBench};

fn usage() -> ! {
    eprintln!(
        "usage: uforksim <hello|spawn|context1|redis|faas|nginx|shell|forkserver|privsep> \
         [args] [--os ufork|cheribsd|nephele] [--strategy copa|coa|full] \
         [--isolation none|fault|full] [--cores N] [--aslr SEED]"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut workload = String::new();
    let mut positional: Vec<u64> = Vec::new();
    let mut os_name = "ufork".to_string();
    let mut strategy = CopyStrategy::CoPA;
    let mut isolation = IsolationLevel::Full;
    let mut cores = 1usize;
    let mut _aslr: Option<u64> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--os" => os_name = it.next().unwrap_or_else(|| usage()),
            "--strategy" => {
                strategy = match it.next().as_deref() {
                    Some("copa") => CopyStrategy::CoPA,
                    Some("coa") => CopyStrategy::CoA,
                    Some("full") => CopyStrategy::Full,
                    _ => usage(),
                }
            }
            "--isolation" => {
                isolation = match it.next().as_deref() {
                    Some("none") => IsolationLevel::None,
                    Some("fault") => IsolationLevel::Fault,
                    Some("full") => IsolationLevel::Full,
                    _ => usage(),
                }
            }
            "--cores" => {
                cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--aslr" => _aslr = it.next().and_then(|v| v.parse().ok()),
            _ if workload.is_empty() => workload = a,
            _ => match a.parse() {
                Ok(v) => positional.push(v),
                Err(_) => usage(),
            },
        }
    }

    let sys = match os_name.as_str() {
        "ufork" => Sys::Ufork(strategy, isolation),
        "cheribsd" | "mono" => Sys::Mono,
        "nephele" => Sys::Nephele,
        _ => usage(),
    };

    let mut mcfg = MachineConfig {
        cores,
        ..MachineConfig::default()
    };

    let p = |i: usize, d: u64| positional.get(i).copied().unwrap_or(d);

    // Build machine + workload.
    let (mut m, pid, window) = match workload.as_str() {
        "hello" => {
            let mut m = AnyMachine::build(sys, 256, mcfg);
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
                .expect("spawn");
            (m, pid, None)
        }
        "spawn" => {
            let mut m = AnyMachine::build(sys, 256, mcfg);
            #[allow(clippy::cast_possible_truncation)]
            let n = p(0, 1000) as u32;
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(n)))
                .expect("spawn");
            (m, pid, None)
        }
        "context1" => {
            let mut m = AnyMachine::build(sys, 256, mcfg);
            let pid = m
                .spawn(
                    &ImageSpec::hello_world(),
                    Box::new(Context1::new(p(0, 100_000) * 2)),
                )
                .expect("spawn");
            (m, pid, None)
        }
        "redis" => {
            let rcfg = RedisConfig::sized(p(0, 100), p(1, 100) * 1000);
            let phys = ((3 * rcfg.heap_bytes()) / (1 << 20) + 128) as u32;
            let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
            let mut m = AnyMachine::build(sys, phys, mcfg);
            let pid = m
                .spawn(&img, Box::new(RedisServer::new(rcfg)))
                .expect("spawn");
            (m, pid, None)
        }
        "faas" => {
            #[allow(clippy::cast_possible_truncation)]
            let w = p(0, 2) as u32;
            mcfg.cores = w as usize + 1;
            mcfg.child_affinity = Some((1..=w as usize).collect());
            let mut m = AnyMachine::build(sys, 512, mcfg);
            let mut fcfg = FaasConfig::for_cores(w);
            fcfg.window_ns = 1e9;
            let img = ImageSpec::with_heap("micropython", 2 << 20);
            let pid = m.spawn(&img, Box::new(Zygote::new(fcfg))).expect("spawn");
            m.set_affinity(pid, vec![0]);
            (m, pid, Some(1e9))
        }
        "nginx" => {
            #[allow(clippy::cast_possible_truncation)]
            let w = p(0, 3) as u32;
            mcfg.time_limit = Some(0.5e9);
            let mut m = AnyMachine::build(sys, 512, mcfg);
            let img = ImageSpec::with_heap("nginx", 4 << 20);
            let ncfg = NginxConfig {
                workers: w,
                ..NginxConfig::default()
            };
            let pid = m
                .spawn(&img, Box::new(Nginx::new(ncfg, Fd(3))))
                .expect("spawn");
            m.install_listener(
                pid,
                ConnTemplate {
                    requests_per_conn: 64,
                    req_bytes: 128,
                    think_ns: 4_500.0,
                },
                u64::MAX / 2,
            )
            .expect("listener");
            (m, pid, Some(0.5e9))
        }
        "shell" => {
            let mut m = AnyMachine::build(sys, 256, mcfg);
            let cmds = (0..p(0, 3))
                .map(|i| Command {
                    output: format!("out/cmd{i}.txt"),
                    ops: 10_000,
                    code: 0,
                })
                .collect();
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(Shell::new(cmds)))
                .expect("spawn");
            (m, pid, None)
        }
        "forkserver" => {
            let mut m = AnyMachine::build(sys, 256, mcfg);
            #[allow(clippy::cast_possible_truncation)]
            let n = p(0, 100) as u32;
            let cfg = ForkServerConfig {
                executions: n,
                ..ForkServerConfig::default()
            };
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(ForkServer::new(cfg)))
                .expect("spawn");
            (m, pid, None)
        }
        "privsep" => {
            let mut m = AnyMachine::build(sys, 256, mcfg);
            #[allow(clippy::cast_possible_truncation)]
            let n = p(0, 20) as u32;
            let cfg = PrivsepConfig {
                messages: n,
                ..PrivsepConfig::default()
            };
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(Privsep::new(cfg)))
                .expect("spawn");
            (m, pid, None)
        }
        _ => usage(),
    };

    m.run();

    println!(
        "workload:   {workload} on {} ({cores} core(s))",
        sys.label()
    );
    println!("init exit:  {:?}", m.exit_code(pid));
    println!("sim time:   {:.3} ms", m.now() / 1e6);
    if let Some(w) = window {
        println!("window:     {:.1} s simulated", w / 1e9);
    }
    if !m.fork_log().is_empty() {
        let mean =
            m.fork_log().iter().map(|f| f.latency_ns).sum::<f64>() / m.fork_log().len() as f64;
        println!(
            "forks:      {} (mean latency {:.1} µs)",
            m.fork_log().len(),
            mean / 1e3
        );
    }
    if m.total_served() > 0 {
        println!("served:     {} requests", m.total_served());
    }
    println!("processes:  {} exited", m.exit_log().len());
    println!(
        "frames:     {} allocated (peak {})",
        m.allocated_frames(),
        m.peak_frames()
    );
    println!("\ncounters:\n{}", {
        // Indent the display.
        let s = format!("{}", {
            let c = m.counters();
            *c
        });
        s.lines()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    });
}
