//! `repro` — regenerates every table and figure of the μFork evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [table1|fig3|...|fig9|ablations|scaling|pressure|storm|ring|trace|all] [--quick]
//! ```
//!
//! `--quick` shrinks iteration counts / windows (CI-friendly); the default
//! runs the paper's parameters. All times are *simulated* (see DESIGN.md).
//!
//! `trace` is not part of `all`: besides printing the per-phase fork
//! breakdown it writes `TRACE_fork.json` at the repo root and rewrites the
//! marker-delimited trace section of `EXPERIMENTS.md`.

use std::env;
use std::fs;
use std::path::Path;

use ufork_bench::report::{num, render_table, size_label};
use ufork_bench::{
    ablation_aslr, ablation_eager_vs_lazy, ablation_fork_vs_exec, ablation_isolation_sweep,
    ablation_naive_scan, fig6, fig7, fig8, fig9, fork_frontier_sweep, fork_scaling_sweep,
    pressure_storm, pressure_sweep, redis_sweep, ring_fork_sweep, ring_service_sweep,
    snapshot_train_sweep, storm_sweep, table1, trace_chrome_json, trace_fork_runs,
    trace_summary_text, zygote_fleet_sweep, AblationRow, RedisRow, PRESSURE_P99_LIMIT,
    PRESSURE_SEED, STORM_CORES, STORM_SEED,
};

fn print_ablation(title: &str, rows: &[AblationRow]) {
    println!("== Ablation: {title} ==");
    for r in rows {
        let metrics: Vec<String> = r
            .metrics
            .iter()
            .map(|(n, v, u)| format!("{n}: {}{u}", num(*v)))
            .collect();
        println!("  {:<42} {}", r.label, metrics.join("  |  "));
    }
    println!();
}

fn print_table1() {
    println!("== Table 1: SASOS fork systems comparison ==");
    let rows = table1();
    let headers: Vec<&str> = rows[0].to_vec();
    let body: Vec<Vec<String>> = rows[1..]
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    println!("{}", render_table(&headers, &body));
}

fn redis_rows(quick: bool) -> Vec<RedisRow> {
    if quick {
        ufork_bench::redis_sizes()
            .into_iter()
            .take(2)
            .flat_map(|(e, v)| {
                ufork_bench::redis_systems()
                    .into_iter()
                    .map(move |s| ufork_bench::redis_run(s, e, v))
            })
            .collect()
    } else {
        redis_sweep()
    }
}

fn print_redis(rows: &[RedisRow], metric: &str) {
    let mut sizes: Vec<u64> = rows.iter().map(|r| r.db_bytes).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut systems: Vec<String> = Vec::new();
    for r in rows {
        if !systems.contains(&r.system) {
            systems.push(r.system.clone());
        }
    }
    let mut headers = vec!["DB size".to_string()];
    headers.extend(systems.iter().cloned());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = sizes
        .iter()
        .map(|sz| {
            let mut cells = vec![size_label(*sz)];
            for sysname in &systems {
                let cell = rows
                    .iter()
                    .find(|r| r.db_bytes == *sz && &r.system == sysname)
                    .map(|r| match metric {
                        "save_ms" => num(r.save_ms),
                        "fork_us" => num(r.fork_us),
                        _ => num(r.mem_mb),
                    })
                    .unwrap_or_else(|| "-".to_string());
                cells.push(cell);
            }
            cells
        })
        .collect();
    println!("{}", render_table(&headers_ref, &body));
}

/// Rewrites the `<!-- trace:begin -->` … `<!-- trace:end -->` block of
/// `EXPERIMENTS.md` with the freshly measured per-phase summary.
fn update_experiments(path: &Path, summary: &str) {
    const BEGIN: &str = "<!-- trace:begin -->";
    const END: &str = "<!-- trace:end -->";
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!(
                "warning: {} not found, skipping doc refresh",
                path.display()
            );
            return;
        }
    };
    let (Some(b), Some(e)) = (text.find(BEGIN), text.find(END)) else {
        eprintln!(
            "warning: trace markers missing in {}, skipping doc refresh",
            path.display()
        );
        return;
    };
    if e < b {
        eprintln!("warning: malformed trace markers in {}", path.display());
        return;
    }
    let new = format!("{}{BEGIN}\n\n{}{}", &text[..b], summary, &text[e..]);
    fs::write(path, new).expect("rewrite EXPERIMENTS.md");
    println!("updated {} (trace section)", path.display());
}

/// `repro trace`: per-phase fork-latency breakdown from the
/// simulated-time trace layer (paper-style, in place of PMU counters).
fn run_trace() {
    println!("== Per-phase fork-latency breakdown (simulated-time trace) ==");
    let runs = trace_fork_runs();
    let summary = trace_summary_text(&runs);
    print!("{summary}");

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let json_path = root.join("TRACE_fork.json");
    fs::write(&json_path, trace_chrome_json(&runs)).expect("write TRACE_fork.json");
    println!("wrote {}", json_path.display());
    update_experiments(&root.join("EXPERIMENTS.md"), &summary);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let mut redis_cache: Option<Vec<RedisRow>> = None;
    let mut redis = |quick: bool| -> Vec<RedisRow> {
        if redis_cache.is_none() {
            redis_cache = Some(redis_rows(quick));
        }
        redis_cache.clone().unwrap()
    };

    let all = what == "all";
    if all || what == "table1" {
        print_table1();
    }
    if all || what == "fig3" || what == "fig4" || what == "fig5" {
        let rows = redis(quick);
        if all || what == "fig3" {
            println!("== Figure 3: Redis DB overall save times (ms) ==");
            print_redis(&rows, "save_ms");
        }
        if all || what == "fig4" {
            println!("== Figure 4: Redis fork latency (µs) ==");
            print_redis(&rows, "fork_us");
        }
        if all || what == "fig5" {
            println!("== Figure 5: Redis forked-process memory consumption (MB) ==");
            print_redis(&rows, "mem_mb");
        }
    }
    if all || what == "fig6" {
        println!("== Figure 6: FaaS function throughput (functions/s) ==");
        let window = if quick { 0.2e9 } else { 1.0e9 };
        let rows = fig6(window);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.system.clone(), r.cores.to_string(), num(r.throughput)])
            .collect();
        println!(
            "{}",
            render_table(&["System", "Worker cores", "Functions/s"], &body)
        );
    }
    if all || what == "fig7" {
        println!("== Figure 7: Nginx throughput (requests/s) ==");
        let window = if quick { 0.1e9 } else { 0.5e9 };
        let rows = fig7(window);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    r.cores.to_string(),
                    r.workers.to_string(),
                    num(r.throughput),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["System", "Cores", "Workers", "Requests/s"], &body)
        );
    }
    if all || what == "fig8" {
        println!("== Figure 8: hello-world fork latency and memory ==");
        let rows = fig8();
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.system.clone(), num(r.fork_us), format!("{:.2}", r.mem_mb)])
            .collect();
        println!(
            "{}",
            render_table(&["System", "fork latency (µs)", "child memory (MB)"], &body)
        );
    }
    if all || what == "ablations" {
        print_ablation("fork vs fork+exec (U1)", &ablation_fork_vs_exec());
        print_ablation("isolation levels (R4)", &ablation_isolation_sweep());
        print_ablation(
            "eager vs lazy GOT/metadata copy (paper §3.5)",
            &ablation_eager_vs_lazy(),
        );
        print_ablation("region ASLR (paper §3.7)", &ablation_aslr());
        print_ablation(
            "naive granule sweep vs tag-summary scan (CLoadTags)",
            &ablation_naive_scan(),
        );
    }
    if all || what == "scaling" {
        println!("== Fork scaling: parallel walk, simulated time ==");
        let rows = fork_scaling_sweep();
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.heap.to_string(),
                    r.mode_label(),
                    num(r.sim_fork_ns / 1e3),
                    num(r.sim_copy_done_ns / 1e3),
                    r.chunks.to_string(),
                    r.recycled.to_string(),
                    r.zeroing_skipped.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Heap",
                    "Walk",
                    "fork (µs, sim)",
                    "copy done (µs, sim)",
                    "Chunks",
                    "Recycled",
                    "Zero-skipped",
                ],
                &body
            )
        );
        println!("== Fork latency frontier: child-runnable vs copy-complete ==");
        let frontier = fork_frontier_sweep();
        let body: Vec<Vec<String>> = frontier
            .iter()
            .map(|r| {
                vec![
                    r.heap.to_string(),
                    r.mode.to_string(),
                    num(r.commit_ns / 1e3),
                    num(r.copy_done_ns / 1e3),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["Heap", "Mode", "commit (µs, sim)", "copy done (µs, sim)"],
                &body
            )
        );
        // Allocator shard statistics (via MemStats) for the widest run.
        if let Some(r) = rows
            .iter()
            .find(|r| r.heap == "cap-dense" && r.workers == 8)
        {
            let per: Vec<String> = r
                .shard
                .per_shard_allocated
                .iter()
                .map(|n| n.to_string())
                .collect();
            println!("cap-dense par8 allocator shards:");
            println!("  per_shard_allocated: [{}]", per.join(", "));
            println!(
                "  steals: {}  recycled_hits: {}  zeroing_skipped: {}",
                r.shard.steals, r.shard.recycled_hits, r.shard.zeroing_skipped
            );
            println!();
        }
    }
    if all || what == "snapshot" {
        println!("== Snapshot train: per-snapshot fork cost, 5% writes between snapshots ==");
        let rows = snapshot_train_sweep();
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    r.scope.to_string(),
                    r.walk.to_string(),
                    r.snapshot.to_string(),
                    num(r.sim_fork_ns / 1e3),
                    num(r.sim_copy_done_ns / 1e3),
                    r.pages_dirty_copied.to_string(),
                    r.pages_shared_clean.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "System",
                    "Scope",
                    "Walk",
                    "Snap",
                    "fork (µs, sim)",
                    "copy done (µs, sim)",
                    "Dirty copied",
                    "Shared clean",
                ],
                &body
            )
        );
        println!("== Zygote fleet: resident frames vs warm children ==");
        let fleet = zygote_fleet_sweep();
        let body: Vec<Vec<String>> = fleet
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    r.children.to_string(),
                    r.frames_one_child.to_string(),
                    r.frames_fleet.to_string(),
                    r.frames_deduped.to_string(),
                    r.dedup_hash_probes.to_string(),
                    r.pages_shared_clean.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Variant",
                    "Children",
                    "Frames @1",
                    "Frames @M",
                    "Deduped",
                    "Probes",
                    "Shared clean",
                ],
                &body
            )
        );
    }
    if all || what == "pressure" {
        println!("== Fork storm under memory pressure (4 MiB, Full requested) ==");
        let rows = pressure_storm();
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    r.forks_ok.to_string(),
                    r.forks_degraded.to_string(),
                    r.fork_rollbacks.to_string(),
                    format!("{}/{}", r.reclaim_inline, r.reclaim_background),
                    r.magazine_hits.to_string(),
                    r.oom_kills.to_string(),
                    r.journal_ops.to_string(),
                    num(r.fork_backoff_ns as f64 / 1e3),
                    r.pressure.clone(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Policy",
                    "Forks",
                    "Degraded",
                    "Rollbacks",
                    "Reclaim in/bg",
                    "Mag hits",
                    "OOM",
                    "Journal ops",
                    "Backoff (µs, sim)",
                    "Pressure",
                ],
                &body
            )
        );
        let children = if quick { 150 } else { 600 };
        println!(
            "== Fork p99 across the high watermark: {children} churning children, daemon ablation =="
        );
        let rows = pressure_sweep(children, PRESSURE_SEED, STORM_CORES);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.occupancy.to_string(),
                    if r.daemon { "on" } else { "off" }.to_string(),
                    num(r.sim_p50_ns / 1e3),
                    num(r.sim_p99_ns / 1e3),
                    r.reclaim_background.to_string(),
                    r.frames_prezeroed.to_string(),
                    r.magazine_hits.to_string(),
                    r.oom_kills.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Occupancy",
                    "Daemon",
                    "fork p50 (µs, sim)",
                    "fork p99 (µs, sim)",
                    "Bg passes",
                    "Prezeroed",
                    "Mag hits",
                    "OOM",
                ],
                &body
            )
        );
        let p99 = |occupancy: &str, daemon: bool| {
            rows.iter()
                .find(|r| r.occupancy == occupancy && r.daemon == daemon)
                .expect("pressure row")
                .sim_p99_ns
        };
        println!(
            "high-watermark p99 over low: {:.3}x with the daemon (limit {PRESSURE_P99_LIMIT}x), {:.3}x without\n",
            p99("high", true) / p99("low", true),
            p99("high", false) / p99("low", false),
        );
    }
    if all || what == "storm" {
        let children = if quick { 800 } else { 10_000 };
        println!("== Fork storm: {children} concurrent children, {STORM_CORES} cores (event-driven scheduler) ==");
        let rows = storm_sweep(children, STORM_SEED, STORM_CORES);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|(mode, r, p)| {
                vec![
                    mode.label.to_string(),
                    r.completed.to_string(),
                    r.peak_live.to_string(),
                    num(r.p50_fork_ns / 1e3),
                    num(r.p99_fork_ns / 1e3),
                    num(r.forks_per_sim_sec),
                    if p.windows > 0 {
                        num(p.p99_copy_done_ns / 1e3)
                    } else {
                        "-".to_string()
                    },
                    num(r.final_ns / 1e9),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Mode",
                    "Completed",
                    "Peak live",
                    "fork p50 (µs, sim)",
                    "fork p99 (µs, sim)",
                    "forks/sim-s",
                    "copy-done p99 (µs)",
                    "storm time (s, sim)",
                ],
                &body
            )
        );
    }
    if all || what == "ring" {
        println!("== Ring fork tax: fork latency with live sealed ring endpoints vs pipes ==");
        let rows = ring_fork_sweep();
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.setup.to_string(),
                    r.endpoints.to_string(),
                    num(r.sim_fork_ns / 1e3),
                    r.ring_caps_relocated.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Mode",
                    "Setup",
                    "Endpoints",
                    "fork (µs, sim)",
                    "Caps relocated"
                ],
                &body
            )
        );
        // The acceptance-scale differential: every hop of the
        // frontend -> workers -> store fabric bitwise-identical across
        // all four backends (ring_service_sweep asserts it internally).
        let requests = if quick { 20_000 } else { 1_000_000 };
        println!(
            "== Multi-tier ring fabric: {requests} requests per backend, traffic compared bitwise =="
        );
        let svc = ring_service_sweep(requests);
        let body: Vec<Vec<String>> = svc
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.requests.to_string(),
                    num(r.sim_final_ns / 1e9),
                    r.ring_msgs.to_string(),
                    r.ring_full_stalls.to_string(),
                    r.ring_caps_relocated.to_string(),
                    format!("{:016x}", r.kv_digest),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "Backend",
                    "Requests",
                    "time (s, sim)",
                    "Ring msgs",
                    "Full stalls",
                    "Caps relocated",
                    "KV digest",
                ],
                &body
            )
        );
        println!(
            "ring fabric: {} backends agreed bitwise on {} rings (traffic, digests, store dump)\n",
            svc.len(),
            svc[0].rings.len()
        );
    }
    if what == "trace" {
        run_trace();
    }
    if all || what == "fig9" {
        println!("== Figure 9: Unixbench Spawn and Context1 ==");
        let (iters, limit) = if quick { (100, 5_000) } else { (1000, 100_000) };
        let rows = fig9(iters, limit);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.system.clone(), num(r.spawn_ms), num(r.context1_ms)])
            .collect();
        let spawn_hdr = format!("Spawn x{iters} (ms)");
        let ctx_hdr = format!("Context1 to {limit} (ms)");
        println!("{}", render_table(&["System", &spawn_hdr, &ctx_hdr], &body));
    }
}
