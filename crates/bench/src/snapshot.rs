//! Dirty-scope fork scenarios: the snapshot train and the zygote fleet.
//!
//! The **snapshot train** is the Redis-BGSAVE pattern distilled: one
//! long-lived parent forks a snapshot child every K sim-ms while a
//! write-heavy mix dirties a fraction of its heap between snapshots.
//! With `track_dirty` on, every fork after the first runs under
//! `CopyScope::DirtySince` and copies only the pages written since the
//! previous snapshot — O(dirty) instead of O(heap) — while clean pages
//! are shared with the parent by a refcount bump. The multi-AS baseline
//! drives the *same* train through the shared [`MemOs`] trait for the
//! paper-style comparison.
//!
//! The **zygote fleet** forks M warm children from one unmodified parent
//! and keeps them all alive. With the cross-child frame-dedup index on,
//! child N's eager copies content-hash to child 1's frames and are
//! shared instead of re-copied, so resident frames stay ~flat in M.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_baselines::{mono, BaselineConfig};
use ufork_exec::{Ctx, MemOs};
use ufork_mem::PAGE_SIZE;

/// Heap pages of the snapshot-train parent. Large enough that the
/// per-page walk dwarfs the fixed fork cost — the 0.25× dirty-scope
/// gate is asymptotic, not a fixed-cost artifact.
pub const TRAIN_HEAP_PAGES: u64 = 2048;

/// Fraction of the heap dirtied between consecutive snapshots (the
/// gate's write-heavy mix: 5%).
pub const TRAIN_WRITE_RATE: f64 = 0.05;

/// Snapshots per train. The first always runs `Everything` (nothing is
/// stamped yet); the steady state the gate measures is snapshots ≥ 2.
pub const TRAIN_SNAPSHOTS: u32 = 5;

/// Children in the zygote fleet.
pub const FLEET_CHILDREN: u32 = 8;

/// One fork of a snapshot train.
#[derive(Clone, Debug)]
pub struct SnapshotRow {
    /// System label (`μFork (full copy)`, `CheriBSD`, ...).
    pub system: String,
    /// Copy scope the train ran under: `everything` (dirty tracking
    /// off) or `dirty` (`CopyScope::DirtySince` from snapshot 2 on).
    pub scope: &'static str,
    /// Walk mode label (`serial`, `pipelined`; `-` for the baseline).
    pub walk: &'static str,
    /// 1-based index of this snapshot in the train.
    pub snapshot: u32,
    /// Simulated fork latency as the parent observes it (commit
    /// latency for the pipelined walk), ns.
    pub sim_fork_ns: f64,
    /// Simulated time until the child's copy is complete, including
    /// any drained pipelined background window, ns.
    pub sim_copy_done_ns: f64,
    /// Pages eagerly copied because the scope classified them dirty.
    pub pages_dirty_copied: u64,
    /// Clean pages shared with the parent by refcount bump.
    pub pages_shared_clean: u64,
}

/// Drives one snapshot train through the [`MemOs`] trait, so μFork and
/// the multi-AS baseline run the identical workload: populate
/// `heap_pages`, then per round dirty `write_rate` of them (a rotating
/// contiguous window, so rounds are deterministic but not identical)
/// and fork a snapshot child, draining any pipelined background copy
/// before tearing the child down. Returns per-snapshot
/// `(commit_ns, copy_done_ns, dirty_copied, shared_clean)`.
fn run_train_os<O: MemOs>(
    os: &mut O,
    heap_pages: u64,
    write_rate: f64,
    snapshots: u32,
) -> Vec<(f64, f64, u64, u64)> {
    let mut ctx = Ctx::new();
    let img = ImageSpec::with_heap("snapshot", heap_pages * PAGE_SIZE + (256 << 10));
    os.spawn(&mut ctx, Pid(1), &img).expect("spawn snapshot");
    let heap_bytes = heap_pages * PAGE_SIZE;
    let arr = os.malloc(&mut ctx, Pid(1), heap_bytes).expect("heap");
    // Touch every page so the whole heap is resident before the first
    // snapshot, with a capability every 8th page so the dirty walk still
    // exercises the tag scan.
    for p in 0..heap_pages {
        let slot = arr.with_addr(arr.base() + p * PAGE_SIZE).expect("slot");
        if p % 8 == 0 {
            os.store_cap(&mut ctx, Pid(1), &slot, &slot).expect("cap");
        } else {
            os.store(&mut ctx, Pid(1), &slot, &p.to_le_bytes())
                .expect("store");
        }
    }

    let dirty_per_round = ((heap_pages as f64 * write_rate).ceil() as u64).min(heap_pages);
    let mut rows = Vec::new();
    for s in 1..=snapshots {
        // The write-heavy mix between snapshots: a contiguous window of
        // `write_rate` pages, rotated per round.
        let start = (u64::from(s - 1) * dirty_per_round) % heap_pages;
        for i in 0..dirty_per_round {
            let page = (start + i) % heap_pages;
            let slot = arr
                .with_addr(arr.base() + page * PAGE_SIZE + 64)
                .expect("slot");
            os.store(&mut ctx, Pid(1), &slot, &[s as u8; 8])
                .expect("dirty store");
        }

        let child = Pid(1000 + s);
        let mut fctx = Ctx::new();
        os.fork(&mut fctx, Pid(1), child).expect("snapshot fork");
        let commit_ns = fctx.kernel_ns;
        // Stream any pipelined background window on the same context.
        while os.pipeline_step(&mut fctx, child).expect("drain") {}
        rows.push((
            commit_ns,
            fctx.kernel_ns,
            fctx.counters.pages_dirty_copied,
            fctx.counters.pages_shared_clean,
        ));
        // BGSAVE done: the snapshot child exits.
        os.destroy(&mut ctx, child);
    }
    rows
}

/// The μFork variants of the train: {everything, dirty} × {serial,
/// pipelined}, all under the eager Full strategy (where fork-time copy
/// volume is what the dirty scope cuts).
pub fn snapshot_train_modes() -> Vec<(&'static str, &'static str, WalkMode, bool)> {
    vec![
        ("everything", "serial", WalkMode::Serial, false),
        ("dirty", "serial", WalkMode::Serial, true),
        ("everything", "pipelined", WalkMode::Pipelined, false),
        ("dirty", "pipelined", WalkMode::Pipelined, true),
    ]
}

/// Runs one μFork snapshot train.
pub fn snapshot_train_run(
    scope: &'static str,
    walk_label: &'static str,
    walk: WalkMode,
    track_dirty: bool,
) -> Vec<SnapshotRow> {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 64,
        strategy: CopyStrategy::Full,
        walk,
        track_dirty,
        ..UforkConfig::default()
    });
    run_train_os(&mut os, TRAIN_HEAP_PAGES, TRAIN_WRITE_RATE, TRAIN_SNAPSHOTS)
        .into_iter()
        .enumerate()
        .map(|(i, (fork_ns, done_ns, dirty, clean))| SnapshotRow {
            system: "μFork (full copy)".to_string(),
            scope,
            walk: walk_label,
            snapshot: i as u32 + 1,
            sim_fork_ns: fork_ns,
            sim_copy_done_ns: done_ns,
            pages_dirty_copied: dirty,
            pages_shared_clean: clean,
        })
        .collect()
}

/// Runs the same train on the CheriBSD-like multi-AS baseline (classic
/// CoW fork; no dirty scope exists to cut the per-PTE walk).
pub fn snapshot_train_baseline() -> Vec<SnapshotRow> {
    let mut os = mono(BaselineConfig {
        phys_mib: 64,
        ..BaselineConfig::default()
    });
    run_train_os(&mut os, TRAIN_HEAP_PAGES, TRAIN_WRITE_RATE, TRAIN_SNAPSHOTS)
        .into_iter()
        .enumerate()
        .map(|(i, (fork_ns, done_ns, dirty, clean))| SnapshotRow {
            system: "CheriBSD".to_string(),
            scope: "everything",
            walk: "-",
            snapshot: i as u32 + 1,
            sim_fork_ns: fork_ns,
            sim_copy_done_ns: done_ns,
            pages_dirty_copied: dirty,
            pages_shared_clean: clean,
        })
        .collect()
}

/// The full snapshot-train sweep: every μFork variant plus the
/// baseline.
pub fn snapshot_train_sweep() -> Vec<SnapshotRow> {
    let mut rows = Vec::new();
    for (scope, walk_label, walk, track) in snapshot_train_modes() {
        rows.extend(snapshot_train_run(scope, walk_label, walk, track));
    }
    rows.extend(snapshot_train_baseline());
    rows
}

/// One zygote-fleet configuration: M warm children forked from one
/// unmodified parent, all kept alive.
#[derive(Clone, Debug)]
pub struct ZygoteFleetRow {
    /// Variant label: `baseline` (no dedup, no dirty tracking),
    /// `dedup` (cross-child frame dedup), `dirty` (dirty tracking: the
    /// clean-share path), for serial and pipelined walks.
    pub variant: String,
    /// Children forked and kept alive.
    pub children: u32,
    /// Frames allocated after the first child.
    pub frames_one_child: u32,
    /// Frames allocated after all `children`.
    pub frames_fleet: u32,
    /// Eager copies avoided by a dedup-index hit.
    pub frames_deduped: u64,
    /// Content-hash/memcmp passes the dedup index charged.
    pub dedup_hash_probes: u64,
    /// Clean pages shared with the parent by refcount bump.
    pub pages_shared_clean: u64,
}

/// Zygote heap pages. Data-only content (no capabilities): frames that
/// carry tags are region-specific by construction and the dedup index
/// refuses them, so the fleet scenario measures the dedup path itself.
pub const FLEET_HEAP_PAGES: u64 = 512;

/// Runs one zygote fleet: fork [`FLEET_CHILDREN`] children under the
/// given walk and knobs, sampling resident frames after the first child
/// and after the full fleet.
pub fn zygote_fleet_run(
    variant: &str,
    walk: WalkMode,
    dedup_frames: bool,
    track_dirty: bool,
) -> ZygoteFleetRow {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy: CopyStrategy::Full,
        walk,
        dedup_frames,
        track_dirty,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let img = ImageSpec::with_heap("zygote", FLEET_HEAP_PAGES * PAGE_SIZE + (256 << 10));
    os.spawn(&mut ctx, Pid(1), &img).expect("spawn zygote");
    let arr = os
        .malloc(&mut ctx, Pid(1), FLEET_HEAP_PAGES * PAGE_SIZE)
        .expect("heap");
    // Per-page-unique warm state (a JIT'd runtime image): identical
    // across children, distinct across pages.
    for p in 0..FLEET_HEAP_PAGES {
        let slot = arr.with_addr(arr.base() + p * PAGE_SIZE).expect("slot");
        os.store(&mut ctx, Pid(1), &slot, &(p * 31).to_le_bytes())
            .expect("store");
    }

    let mut fctx = Ctx::new();
    let mut frames_one_child = 0;
    for c in 1..=FLEET_CHILDREN {
        let child = Pid(1 + c);
        os.fork(&mut fctx, Pid(1), child).expect("fleet fork");
        while os.pipeline_step(&mut fctx, child).expect("drain") {}
        if c == 1 {
            frames_one_child = os.allocated_frames();
        }
    }
    ZygoteFleetRow {
        variant: variant.to_string(),
        children: FLEET_CHILDREN,
        frames_one_child,
        frames_fleet: os.allocated_frames(),
        frames_deduped: fctx.counters.frames_deduped,
        dedup_hash_probes: fctx.counters.dedup_hash_probes,
        pages_shared_clean: fctx.counters.pages_shared_clean,
    }
}

/// The zygote-fleet sweep: no-sharing baseline, dedup, and dirty-scope
/// clean-sharing, under the serial and pipelined walks.
pub fn zygote_fleet_sweep() -> Vec<ZygoteFleetRow> {
    vec![
        zygote_fleet_run("baseline/serial", WalkMode::Serial, false, false),
        zygote_fleet_run("dedup/serial", WalkMode::Serial, true, false),
        zygote_fleet_run("dirty/serial", WalkMode::Serial, false, true),
        zygote_fleet_run("baseline/pipelined", WalkMode::Pipelined, false, false),
        zygote_fleet_run("dedup/pipelined", WalkMode::Pipelined, true, false),
        zygote_fleet_run("dirty/pipelined", WalkMode::Pipelined, false, true),
    ]
}
