//! The `repro trace` experiment: the paper-style per-phase fork-latency
//! breakdown, produced from the simulated-time trace layer
//! (`ufork_sim::trace`) instead of Morello PMU counters.
//!
//! Each run forks the fork-scaling workload (cap-dense heap,
//! [`crate::SCALING_PAGES`] pages, Full-copy strategy) on a **fresh
//! traced context**, so the trace's charge accumulator is bitwise equal
//! to the fork's end-to-end simulated kernel time — asserted here on
//! every run, and re-validated structurally by the CI trace-smoke job on
//! the exported JSON.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_exec::{Ctx, MemOs};
use ufork_mem::PAGE_SIZE;
use ufork_sim::{
    chrome_trace_json, summary_table, OpCounters, TraceBuf, TraceRun, DEFAULT_TRACE_CAPACITY,
};

use crate::SCALING_PAGES;

/// One traced fork: the recorded buffer plus the independently measured
/// end-to-end simulated time and the fork's counter deltas.
pub struct TracedFork {
    /// Run label: `"serial"`, `"parN"` or `"pipelined"`.
    pub name: String,
    /// Walk workers (0 = serial walk, 1 = pipelined stream lane).
    pub workers: usize,
    /// Simulated latency at which the fork committed and the child was
    /// runnable (kernel ns). Equals `end_to_end_ns` except under the
    /// pipelined walk, which keeps copying after the commit.
    pub commit_ns: f64,
    /// End-to-end simulated fork latency (kernel ns) on the fresh
    /// context that fed the trace — for the pipelined walk this
    /// includes draining the background-copy window.
    pub end_to_end_ns: f64,
    /// The recorded trace.
    pub buf: TraceBuf,
    /// Counters accumulated by the fork.
    pub counters: OpCounters,
}

/// Forks the scaling workload under `walk` with tracing enabled.
///
/// # Panics
///
/// Panics if the trace's same-order charge accumulator is not bitwise
/// equal to the fork's `kernel_ns` — the exactness contract the whole
/// phase breakdown rests on.
pub fn trace_fork_run(walk: WalkMode) -> TracedFork {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy: CopyStrategy::Full,
        walk,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let img = ImageSpec::with_heap("scaling", SCALING_PAGES * PAGE_SIZE + (256 << 10));
    os.spawn(&mut ctx, Pid(1), &img).expect("spawn trace");
    let heap_bytes = SCALING_PAGES * PAGE_SIZE;
    let arr = os.malloc(&mut ctx, Pid(1), heap_bytes).expect("heap");
    let mut off = 0;
    while off < heap_bytes {
        let slot = arr.with_addr(arr.base() + off).expect("slot");
        os.store_cap(&mut ctx, Pid(1), &slot, &slot)
            .expect("store cap");
        off += 32;
    }
    os.set_reg(Pid(1), 4, arr).expect("reg");

    // A fresh context makes kernel_ns start at zero, so its final value
    // is the same ordered sum of charges the trace accumulated.
    let mut fctx = Ctx::traced(DEFAULT_TRACE_CAPACITY);
    os.fork(&mut fctx, Pid(1), Pid(2)).expect("fork trace");
    assert_eq!(
        fctx.kernel_ns.to_bits(),
        fctx.trace.charged_total().to_bits(),
        "trace charge accumulator must equal fork kernel time bitwise"
    );
    let commit_ns = fctx.kernel_ns;
    // For the pipelined walk, stream the background window on the same
    // traced context so its `fork/pipeline/*` spans tile the rest of the
    // copy work. A no-op for the other walks.
    os.pipeline_drain(&mut fctx, Pid(2)).expect("drain trace");
    assert_eq!(
        fctx.kernel_ns.to_bits(),
        fctx.trace.charged_total().to_bits(),
        "trace charge accumulator must survive the background drain bitwise"
    );
    let (workers, name) = match walk {
        WalkMode::Serial => (0, "serial".to_string()),
        WalkMode::Pipelined => (1, "pipelined".to_string()),
        WalkMode::Parallel(n) => (n.max(1), format!("par{}", n.max(1))),
    };
    TracedFork {
        name,
        workers,
        commit_ns,
        end_to_end_ns: fctx.kernel_ns,
        buf: fctx.trace,
        counters: fctx.counters,
    }
}

/// The traced runs exported by `repro trace` and gated by CI: the serial
/// walk, the widest parallel walk, and the pipelined walk (commit +
/// drained background window).
pub fn trace_fork_runs() -> Vec<TracedFork> {
    vec![
        trace_fork_run(WalkMode::Serial),
        trace_fork_run(WalkMode::Parallel(8)),
        trace_fork_run(WalkMode::Pipelined),
    ]
}

/// Renders the runs as Chrome trace-event JSON (run *i* = Chrome pid
/// *i*). Byte-identical across invocations with the same configuration.
pub fn trace_chrome_json(runs: &[TracedFork]) -> String {
    let trs: Vec<TraceRun<'_>> = runs
        .iter()
        .enumerate()
        .map(|(i, r)| TraceRun {
            name: &r.name,
            pid: i as u32,
            buf: &r.buf,
            end_to_end_ns: r.end_to_end_ns,
        })
        .collect();
    chrome_trace_json(&trs)
}

/// Renders the per-phase histogram summaries as a markdown-friendly
/// block (also printed by `repro trace`).
pub fn trace_summary_text(runs: &[TracedFork]) -> String {
    let mut out = String::new();
    for r in runs {
        out.push_str(&format!(
            "### {} walk — fork {:.1} µs (simulated)\n\n```\n{}```\n\n",
            r.name,
            r.end_to_end_ns / 1e3,
            summary_table(&r.buf)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_serial_fork_phases_tile_end_to_end() {
        let r = trace_fork_run(WalkMode::Serial);
        // Exact by construction (asserted inside the run); the phase-sum
        // regrouping only differs by f64 re-association.
        let sum = r.buf.phase_sum();
        assert!(
            (sum - r.end_to_end_ns).abs() <= 1e-9 * r.end_to_end_ns,
            "phase sum {sum} vs end-to-end {}",
            r.end_to_end_ns
        );
        // The fork pipeline phases all show up.
        for phase in [
            "fork/fixed",
            "fork/region",
            "fork/walk/pte",
            "fork/walk/copy",
            "fork/walk/reloc",
            "fork/walk/cow_arm",
            "fork/regs",
            "fork/commit",
        ] {
            assert!(
                r.buf.phases().iter().any(|p| p.name == phase),
                "missing phase {phase}"
            );
        }
        assert_eq!(r.buf.instant_count("gate/enter"), 0, "direct fork, no gate");
    }

    #[test]
    fn traced_parallel_fork_is_deterministic_and_has_lane_spans() {
        let a = trace_fork_run(WalkMode::Parallel(4));
        let b = trace_fork_run(WalkMode::Parallel(4));
        assert_eq!(
            a.end_to_end_ns.to_bits(),
            b.end_to_end_ns.to_bits(),
            "same seed + workers ⇒ bit-identical simulated time"
        );
        let ja = trace_chrome_json(&[a]);
        let jb = trace_chrome_json(&[b]);
        assert_eq!(ja, jb, "byte-identical export");
        assert!(ja.contains("fork/chunk"), "lane spans recorded");
        assert!(ja.contains("fork/walk/par"), "parallel phase recorded");
    }

    #[test]
    fn traced_pipelined_fork_tiles_and_matches_serial_copy_work() {
        let serial = trace_fork_run(WalkMode::Serial);
        let piped = trace_fork_run(WalkMode::Pipelined);
        // The pipelined phases tile commit + drain exactly, like every
        // other walk (modulo f64 re-association in the regrouping).
        let sum = piped.buf.phase_sum();
        assert!(
            (sum - piped.end_to_end_ns).abs() <= 1e-9 * piped.end_to_end_ns,
            "phase sum {sum} vs end-to-end {}",
            piped.end_to_end_ns
        );
        for phase in ["fork/pipeline/stage", "fork/pipeline/copy"] {
            assert!(
                piped.buf.phases().iter().any(|p| p.name == phase),
                "missing phase {phase}"
            );
        }
        assert_eq!(
            piped.buf.instant_count("fork/pipeline/commit"),
            1,
            "exactly one early commit"
        );
        // Commit happens at lazy-grade latency: well before the serial
        // walk would have finished copying.
        assert!(
            piped.commit_ns < serial.end_to_end_ns / 2.0,
            "pipelined commit {} ns is not early against serial {} ns",
            piped.commit_ns,
            serial.end_to_end_ns
        );
        // ...but the total copy work matches the eager walk: every page
        // is copied and every capability relocated exactly once.
        assert_eq!(piped.counters.pages_copied, serial.counters.pages_copied);
        assert_eq!(
            piped.counters.caps_relocated,
            serial.counters.caps_relocated
        );
    }

    #[test]
    fn traced_dirty_scope_fork_has_scan_and_dedup_phases() {
        // A dirty-tracking + dedup fork must keep the bitwise
        // charge-accumulator contract and surface its two extra phases
        // (`fork/dirty_scan` for the generation stamp, `fork/dedup` for
        // the content-hash probes) in the same trace stream.
        const PAGES: u64 = 64;
        let mut os = UforkOs::new(UforkConfig {
            phys_mib: 64,
            strategy: CopyStrategy::Full,
            walk: WalkMode::Serial,
            track_dirty: true,
            dedup_frames: true,
            ..UforkConfig::default()
        });
        let mut ctx = Ctx::new();
        let img = ImageSpec::with_heap("dirty-trace", PAGES * PAGE_SIZE + (64 << 10));
        os.spawn(&mut ctx, Pid(1), &img).expect("spawn");
        let arr = os
            .malloc(&mut ctx, Pid(1), PAGES * PAGE_SIZE)
            .expect("heap");
        for p in 0..PAGES {
            // Untagged data only, so the dedup probes actually run.
            let slot = arr.with_addr(arr.base() + p * PAGE_SIZE).expect("slot");
            os.store(&mut ctx, Pid(1), &slot, &1u64.to_le_bytes())
                .expect("store");
        }
        os.fork(&mut ctx, Pid(1), Pid(2)).expect("stamping fork");
        for p in 0..4 {
            let slot = arr.with_addr(arr.base() + p * PAGE_SIZE + 8).expect("slot");
            os.store(&mut ctx, Pid(1), &slot, &(p + 2).to_le_bytes())
                .expect("dirtying store");
        }

        let mut fctx = Ctx::traced(DEFAULT_TRACE_CAPACITY);
        os.fork(&mut fctx, Pid(1), Pid(3))
            .expect("dirty-scope fork");
        assert_eq!(
            fctx.kernel_ns.to_bits(),
            fctx.trace.charged_total().to_bits(),
            "charge accumulator must stay exact with dirty scan + dedup on"
        );
        for phase in ["fork/dirty_scan", "fork/dedup"] {
            assert!(
                fctx.trace.phases().iter().any(|p| p.name == phase),
                "missing phase {phase}"
            );
        }
        // The phases tie out to the counters they narrate.
        assert!(fctx.counters.pages_dirty_copied > 0, "no dirty copies");
        assert!(fctx.counters.pages_shared_clean > 0, "no clean shares");
        assert!(fctx.counters.dedup_hash_probes > 0, "no dedup probes");
    }
}
