//! The `fork_ring` family: what does carrying live shared-memory ring
//! endpoints across `fork` cost, and what does the ring fabric sustain
//! end to end?
//!
//! Two row sets, both in *simulated* time (deterministic, so
//! `bench_gate.py` holds them to the strict threshold):
//!
//! * **fork probe** — one process forks once holding either four pipes
//!   (the pre-ring IPC primitive) or four shared-memory ring endpoints
//!   with a message in flight on each. The delta is exactly the ring
//!   tax on fork: refcount-sharing the `Shm` frames plus relocating the
//!   sealed endpoint capabilities through the register walk. The
//!   acceptance gate holds the ring fork to ≤1.2× the pipe-only fork in
//!   every copy-strategy/walk mode.
//! * **service sweep** — the multi-tier [`RingSvc`] workload (frontend →
//!   forked worker pool → KV store, every hop a ring) run to completion
//!   on each μFork strategy and the multi-AS baseline, recording the
//!   simulated makespan and the machine's ring counters. The sweep also
//!   re-checks the differential invariant the oracle owns: per-ring
//!   traffic digests, the store dump, and the KV digest must be bitwise
//!   identical across every backend.

use std::any::Any;

use ufork::{UforkConfig, UforkOs};
use ufork_abi::{
    BlockingCall, Env, Fd, ForkResult, ImageSpec, Pid, Program, Resume, StepOutcome, SysResult,
};
use ufork_baselines::{mono, BaselineConfig};
use ufork_exec::{Machine, MachineConfig, MemOs};
use ufork_workloads::ringsvc::{RingSvc, RingSvcConfig};

use crate::storm::{storm_modes, StormMode};

/// Endpoints (ring producer ends, or pipes) the probe holds at fork.
pub const PROBE_ENDPOINTS: u64 = 4;
/// Slots per probe ring.
const PROBE_SLOTS: u64 = 8;
/// Message size on the probe rings (and the in-flight pipe payload).
const PROBE_MSG_BYTES: u64 = 32;
/// Scratch-buffer register.
const BUF_REG: usize = 7;
/// Sealed ring endpoints live at `8 + i` — carried by the register
/// relocation walk, exactly like a real ring-fabric process.
const ENDPOINT_REG: usize = 8;

/// One `fork_ring` probe row.
#[derive(Clone, Copy, Debug)]
pub struct RingForkRow {
    /// Copy-strategy/walk mode label (same set as the storm).
    pub mode: &'static str,
    /// `"pipes"` (baseline) or `"rings"`.
    pub setup: &'static str,
    /// Endpoints held live across the fork.
    pub endpoints: u64,
    /// Simulated latency of the fork call itself.
    pub sim_fork_ns: f64,
    /// Sealed ring endpoints the fork relocated (0 for the pipe run).
    pub ring_caps_relocated: u64,
}

/// One `fork_ring` service row.
#[derive(Clone, Debug, PartialEq)]
pub struct RingServiceRow {
    /// Backend label: `ufork-full` / `ufork-coa` / `ufork-copa` /
    /// `multias`.
    pub mode: &'static str,
    /// Requests the frontend pushed end to end.
    pub requests: u64,
    /// Simulated time at which the whole service had exited.
    pub sim_final_ns: f64,
    /// Messages that crossed a ring (req + st + resp tiers).
    pub ring_msgs: u64,
    /// Push attempts that stalled on a full ring (backpressure).
    pub ring_full_stalls: u64,
    /// Sealed endpoints relocated across the service's forks.
    pub ring_caps_relocated: u64,
    /// The store tier's final KV digest.
    pub kv_digest: u64,
    /// Per-ring `(name, pushed, popped, push digest, pop digest)`.
    pub rings: Vec<(String, u64, u64, u64, u64)>,
    /// The store's serialized dump file.
    pub dump: Vec<u8>,
}

/// A process that forks once while holding IPC endpoints — the fork
/// latency delta between its two setups is the ring tax.
#[derive(Clone, Debug)]
struct RingForkProbe {
    rings: bool,
    fds: Vec<Fd>,
}

impl RingForkProbe {
    fn setup(&mut self, env: &mut dyn Env) -> SysResult<()> {
        let buf = env.malloc(256)?;
        env.set_reg(BUF_REG, buf)?;
        for i in 0..PROBE_ENDPOINTS {
            env.store_u64(&buf, i)?;
            if self.rings {
                let (fd, cap) =
                    env.sys_ring_open(&format!("probe{i}"), PROBE_SLOTS, PROBE_MSG_BYTES, true)?;
                env.set_reg(ENDPOINT_REG + i as usize, cap)?;
                // One message in flight per ring: fork must carry live
                // traffic, not just empty windows.
                env.sys_ring_try_push(fd, &cap, &buf, PROBE_MSG_BYTES)?;
                self.fds.push(fd);
            } else {
                let (r, w) = env.sys_pipe()?;
                env.sys_write(w, &buf, PROBE_MSG_BYTES)?;
                self.fds.push(r);
                self.fds.push(w);
            }
        }
        Ok(())
    }
}

impl Program for RingForkProbe {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                if self.setup(env).is_err() {
                    return StepOutcome::Exit(1);
                }
                StepOutcome::Fork
            }
            Resume::Forked(ForkResult::Child) => StepOutcome::Exit(0),
            Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Block(BlockingCall::Wait),
            Resume::Ret(r) => {
                if r.is_err() {
                    return StepOutcome::Exit(2);
                }
                for fd in &self.fds {
                    let _ = env.sys_close(*fd);
                }
                StepOutcome::Exit(0)
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Runs one probe and returns `(fork latency, ring caps relocated)`.
fn run_probe(mode: &StormMode, rings: bool) -> (f64, u64) {
    let os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        strategy: mode.strategy,
        walk: mode.walk,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores: 2,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(RingForkProbe {
                rings,
                fds: Vec::new(),
            }),
        )
        .expect("spawn ring probe");
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "fork_ring/{} parent", mode.label);
    assert_eq!(
        m.exit_code(Pid(2)),
        Some(0),
        "fork_ring/{} child",
        mode.label
    );
    let ev = m.fork_log().first().expect("probe forked once");
    (ev.latency_ns, m.counters().ring_caps_relocated)
}

/// The fork-probe sweep: every storm mode × {pipes, rings}, each run
/// twice and asserted bit-identical (the family's determinism contract).
pub fn ring_fork_sweep() -> Vec<RingForkRow> {
    let mut rows = Vec::new();
    for mode in storm_modes() {
        for (setup, rings) in [("pipes", false), ("rings", true)] {
            let (ns, relocated) = run_probe(&mode, rings);
            let (ns2, relocated2) = run_probe(&mode, rings);
            assert_eq!(
                ns.to_bits(),
                ns2.to_bits(),
                "fork_ring/{}/{setup} is nondeterministic: {ns} ns vs {ns2} ns",
                mode.label
            );
            assert_eq!(relocated, relocated2);
            if rings {
                assert!(
                    relocated >= PROBE_ENDPOINTS,
                    "fork_ring/{}/rings: fork relocated {relocated} sealed endpoints, \
                     expected at least {PROBE_ENDPOINTS}",
                    mode.label
                );
            } else {
                assert_eq!(
                    relocated, 0,
                    "fork_ring/{}/pipes: pipe-only fork relocated ring endpoints",
                    mode.label
                );
            }
            rows.push(RingForkRow {
                mode: mode.label,
                setup,
                endpoints: PROBE_ENDPOINTS,
                sim_fork_ns: ns,
                ring_caps_relocated: relocated,
            });
        }
    }
    rows
}

/// Runs the multi-tier service once on one backend.
fn run_service(mode: &'static str, requests: u64) -> RingServiceRow {
    let cfg = RingSvcConfig {
        requests,
        ..RingSvcConfig::default()
    };
    let prog = Box::new(RingSvc::new(cfg.clone()));
    let mcfg = MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    };
    match mode {
        "multias" => {
            let os = mono(BaselineConfig {
                phys_mib: 256,
                ..BaselineConfig::default()
            });
            let mut m = Machine::new(os, mcfg);
            m.spawn(&ImageSpec::hello_world(), prog)
                .expect("spawn ringsvc");
            m.run();
            observe_service(&m, mode, &cfg)
        }
        _ => {
            let strategy = match mode {
                "ufork-full" => ufork_abi::CopyStrategy::Full,
                "ufork-coa" => ufork_abi::CopyStrategy::CoA,
                "ufork-copa" => ufork_abi::CopyStrategy::CoPA,
                other => unreachable!("unknown ring service mode {other}"),
            };
            let os = UforkOs::new(UforkConfig {
                phys_mib: 256,
                strategy,
                ..UforkConfig::default()
            });
            let mut m = Machine::new(os, mcfg);
            m.spawn(&ImageSpec::hello_world(), prog)
                .expect("spawn ringsvc");
            m.run();
            observe_service(&m, mode, &cfg)
        }
    }
}

fn observe_service<O: MemOs>(
    m: &Machine<O>,
    mode: &'static str,
    cfg: &RingSvcConfig,
) -> RingServiceRow {
    // frontend + store + workers + snapshot child, in fork order.
    for pid in 1..=cfg.workers as u32 + 3 {
        assert_eq!(
            m.exit_code(Pid(pid)),
            Some(0),
            "fork_ring_service/{mode}: pid {pid}"
        );
    }
    let front = m.program::<RingSvc>(Pid(1)).expect("frontend state");
    assert_eq!(
        (front.sent, front.got),
        (cfg.requests, cfg.requests),
        "fork_ring_service/{mode}: request traffic"
    );
    // The store is the first child the frontend forks.
    let store = m.program::<RingSvc>(Pid(2)).expect("store state");
    let c = m.counters();
    RingServiceRow {
        mode,
        requests: cfg.requests,
        sim_final_ns: m.now(),
        ring_msgs: c.ring_msgs,
        ring_full_stalls: c.ring_full_stalls,
        ring_caps_relocated: c.ring_caps_relocated,
        kv_digest: store.kv_digest,
        rings: m
            .vfs()
            .ring_snapshot()
            .into_iter()
            .map(|(_, name, pushed, popped, pd, qd)| (name, pushed, popped, pd, qd))
            .collect(),
        dump: m
            .vfs()
            .file_contents(&cfg.dump_path)
            .expect("store dump written")
            .to_vec(),
    }
}

/// The backends the service sweep covers.
pub const RING_SERVICE_MODES: [&str; 4] = ["ufork-full", "ufork-coa", "ufork-copa", "multias"];

/// The service sweep: each backend run twice (determinism), then every
/// backend's ring traffic, store dump and KV digest compared bitwise
/// against `ufork-full` — the same invariant the oracle's ring
/// differential enforces, re-checked on the bench path at bench scale.
pub fn ring_service_sweep(requests: u64) -> Vec<RingServiceRow> {
    let rows: Vec<RingServiceRow> = RING_SERVICE_MODES
        .iter()
        .map(|mode| {
            let a = run_service(mode, requests);
            let b = run_service(mode, requests);
            assert_eq!(
                a.sim_final_ns.to_bits(),
                b.sim_final_ns.to_bits(),
                "fork_ring_service/{mode} is nondeterministic"
            );
            assert_eq!(
                a, b,
                "fork_ring_service/{mode} observables differ across runs"
            );
            a
        })
        .collect();
    let base = &rows[0];
    for r in &rows[1..] {
        assert_eq!(
            (&r.rings, &r.dump, r.kv_digest, r.ring_msgs),
            (&base.rings, &base.dump, base.kv_digest, base.ring_msgs),
            "fork_ring_service/{}: ring fabric diverged from {}",
            r.mode,
            base.mode
        );
    }
    rows
}

/// Service scale from the environment (`BENCH_RING_REQUESTS`), default
/// 2 000 — the bench-trajectory scale. The ≥1M-request acceptance run is
/// `repro ring` (without `--quick`).
pub fn ring_requests_from_env() -> u64 {
    std::env::var("BENCH_RING_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

/// The fork-probe acceptance gate: in every mode the ring fork stays
/// within `1.2×` the pipe-only fork.
pub const RING_FORK_OVERHEAD_LIMIT: f64 = 1.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fork_probe_is_deterministic_and_cheap() {
        let mode = StormMode {
            label: "copa",
            strategy: ufork_abi::CopyStrategy::CoPA,
            walk: ufork::WalkMode::Serial,
        };
        let (pipes_ns, r0) = run_probe(&mode, false);
        let (rings_ns, r1) = run_probe(&mode, true);
        assert_eq!(r0, 0);
        assert!(r1 >= PROBE_ENDPOINTS);
        assert!(pipes_ns > 0.0 && rings_ns > 0.0);
        assert!(
            rings_ns <= pipes_ns * RING_FORK_OVERHEAD_LIMIT,
            "ring fork {rings_ns} ns vs pipe fork {pipes_ns} ns"
        );
    }

    #[test]
    fn ring_service_backends_agree_at_small_scale() {
        let rows = ring_service_sweep(120);
        assert_eq!(rows.len(), RING_SERVICE_MODES.len());
        for r in &rows {
            assert_eq!(r.requests, 120);
            assert!(r.ring_msgs >= 3 * 120, "every request crosses 3 rings");
            assert!(r.sim_final_ns > 0.0);
        }
    }
}
