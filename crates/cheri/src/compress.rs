//! CHERI Concentrate bounds compression (informative model).
//!
//! Real 128-bit capabilities cannot store full 64-bit base/top values;
//! Morello encodes bounds with a floating-point-style scheme (CHERI
//! Concentrate [Woodruff et al.]): a mantissa of `MW` bits and a shared
//! exponent. Small objects get exact bounds; large objects' bounds are
//! rounded outward to a multiple of 2^e — which is why CHERI allocators
//! must pad large allocations to representable sizes, and why the μFork
//! prototype's tinyalloc port aligns to 16 bytes and beyond.
//!
//! The kernel in this reproduction keeps exact bounds (see the crate-level
//! rationale); this module exists to (a) document the hardware constraint,
//! (b) let tests check that every bound the kernel actually mints *is*
//! representable, so the model never relies on precision real hardware
//! lacks.

/// Mantissa width of the Morello bounds encoding.
pub const MANTISSA_BITS: u32 = 14;

/// A representable-bounds computation result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepresentableBounds {
    /// Rounded-down base.
    pub base: u64,
    /// Rounded-up top (saturating at `u64::MAX`).
    pub top: u64,
    /// The exponent used (0 = exact).
    pub exponent: u32,
}

impl RepresentableBounds {
    /// Length of the representable range.
    pub fn len(&self) -> u64 {
        self.top - self.base
    }

    /// True if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.top == self.base
    }
}

/// Computes the smallest representable range containing `[base, base+len)`.
///
/// Lengths below `2^MANTISSA_BITS` are always exact; larger ones round
/// base down and top up to `2^e` with `e = bits(len) - MANTISSA_BITS`.
pub fn representable(base: u64, len: u64) -> RepresentableBounds {
    if len < (1 << MANTISSA_BITS) {
        return RepresentableBounds {
            base,
            top: base.saturating_add(len),
            exponent: 0,
        };
    }
    let e = 64 - MANTISSA_BITS - (len.leading_zeros().min(64 - MANTISSA_BITS));
    let align = 1u64 << e;
    let rbase = base & !(align - 1);
    let top = base.saturating_add(len);
    let rtop = match top.checked_add(align - 1) {
        Some(t) => t & !(align - 1),
        None => u64::MAX,
    };
    RepresentableBounds {
        base: rbase,
        top: rtop,
        exponent: e,
    }
}

/// True if `[base, base+len)` is exactly representable.
pub fn is_representable(base: u64, len: u64) -> bool {
    let r = representable(base, len);
    r.base == base && r.top == base.saturating_add(len)
}

/// Pads an allocation request so that, placed at any `align(e)`-aligned
/// base, its bounds are exactly representable — what a CHERI-aware
/// allocator does for large objects.
pub fn representable_len(len: u64) -> u64 {
    if len < (1 << MANTISSA_BITS) {
        return len;
    }
    let r = representable(0, len);
    r.top
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_lengths_are_exact() {
        for len in [0u64, 1, 16, 4096, (1 << MANTISSA_BITS) - 1] {
            assert!(is_representable(0x1234_5677, len), "len {len}");
        }
    }

    #[test]
    fn large_unaligned_bounds_round_outward() {
        let base = 0x1_0001;
        let len = 1 << 20; // 1 MiB needs e = 21 - 14 = 7 (128 B align)
        let r = representable(base, len);
        assert!(r.exponent > 0);
        assert!(r.base <= base);
        assert!(r.top >= base + len);
        assert_eq!(r.base % (1 << r.exponent), 0);
        assert_eq!(r.top % (1 << r.exponent), 0);
        // The rounding is tight: less than one alignment unit each side.
        assert!(base - r.base < (1 << r.exponent));
        assert!(r.top - (base + len) < (1 << r.exponent));
    }

    #[test]
    fn aligned_large_bounds_are_exact() {
        // A 1 MiB object at a 1 MiB-aligned base is representable.
        assert!(is_representable(0x10_0000, 1 << 20));
        // Page-aligned object of page-multiple size below the exponent
        // threshold for 4 KiB granularity: e for 16 MiB = 25-14 = 11
        // (2 KiB), so page alignment suffices.
        assert!(is_representable(0x40_0000, 16 << 20));
    }

    #[test]
    fn representable_len_padding() {
        assert_eq!(representable_len(100), 100);
        let padded = representable_len((1 << 20) + 3);
        assert!(padded >= (1 << 20) + 3);
        assert!(is_representable(0, padded));
    }

    #[test]
    fn kernel_minted_bounds_are_representable() {
        // The shapes the μFork kernel actually mints: page-aligned
        // segments and 16-byte-aligned heap blocks — all representable.
        for (base, len) in [
            (0x10_0000u64, 0x1000u64), // a page
            (0x10_0000, 0x40_0000),    // a 4 MiB segment
            (0x12_3450, 0x90),         // a small heap block
            (0x1000_0000, 0x800_0000), // a 128 MiB static heap (aligned)
        ] {
            assert!(
                is_representable(base, len),
                "kernel shape ({base:#x}, {len:#x}) must be representable"
            );
        }
    }

    #[test]
    fn monotone_in_len() {
        // Growing the request never shrinks the representable range.
        let mut prev_top = 0;
        for len in (0..64).map(|i| 1u64 << i) {
            let r = representable(0x7777_0000, len.saturating_sub(1));
            assert!(r.top >= prev_top);
            prev_top = r.top;
        }
    }
}
