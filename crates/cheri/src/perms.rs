//! Capability permission bits.

use core::fmt;
use core::ops::{BitAnd, BitOr, Not};

/// Permission set carried by a [`crate::Capability`].
///
/// Mirrors the architectural permissions the μFork prototype uses on
/// Morello. Like the hardware, permissions are monotonic: derivation can
/// clear bits but never set them ([`crate::Capability::with_perms`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms(u16);

impl Perms {
    /// Load (read) data through the capability.
    pub const LOAD: Perms = Perms(1 << 0);
    /// Store (write) data through the capability.
    pub const STORE: Perms = Perms(1 << 1);
    /// Fetch instructions through the capability (PCC).
    pub const EXECUTE: Perms = Perms(1 << 2);
    /// Load *capabilities* (tagged values) through the capability.
    pub const LOAD_CAP: Perms = Perms(1 << 3);
    /// Store *capabilities* (tagged values) through the capability.
    pub const STORE_CAP: Perms = Perms(1 << 4);
    /// Seal other capabilities with an otype drawn from this capability.
    pub const SEAL: Perms = Perms(1 << 5);
    /// Unseal capabilities sealed with an otype within bounds.
    pub const UNSEAL: Perms = Perms(1 << 6);
    /// Access privileged system registers / instructions (MSR, MRS, ...).
    ///
    /// μprocess capabilities never carry this bit; the kernel's do. This is
    /// how μFork prevents user code running at EL1 from executing
    /// privileged instructions (paper §4.4, principle 2).
    pub const SYSTEM: Perms = Perms(1 << 7);
    /// Global: the capability may be stored anywhere (vs. stack-local).
    pub const GLOBAL: Perms = Perms(1 << 8);
    /// Invoke a sealed capability pair (CInvoke-style domain transition).
    pub const INVOKE: Perms = Perms(1 << 9);

    /// The empty permission set.
    pub const fn empty() -> Perms {
        Perms(0)
    }

    /// Every permission bit set (the root capability's permissions).
    pub const fn all() -> Perms {
        Perms(0x3ff)
    }

    /// Typical permissions for user data memory: load/store of both data
    /// and capabilities, global.
    pub const fn data() -> Perms {
        Perms(
            Perms::LOAD.0
                | Perms::STORE.0
                | Perms::LOAD_CAP.0
                | Perms::STORE_CAP.0
                | Perms::GLOBAL.0,
        )
    }

    /// Typical permissions for read-only data: loads only (incl. capability
    /// loads), global.
    pub const fn rodata() -> Perms {
        Perms(Perms::LOAD.0 | Perms::LOAD_CAP.0 | Perms::GLOBAL.0)
    }

    /// Typical permissions for executable code: load + execute.
    pub const fn code() -> Perms {
        Perms(Perms::LOAD.0 | Perms::EXECUTE.0 | Perms::GLOBAL.0)
    }

    /// Kernel root permissions: everything, including [`Perms::SYSTEM`].
    pub const fn kernel() -> Perms {
        Perms::all()
    }

    /// Returns true if every bit in `other` is present in `self`.
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns true if no bits are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns true if `self` is a (non-strict) subset of `other`.
    ///
    /// Monotonicity checks use this: a derived permission set must satisfy
    /// `derived.is_subset_of(original)`.
    pub const fn is_subset_of(self, other: Perms) -> bool {
        self.0 & !other.0 == 0
    }

    /// The raw bit representation (for storing capabilities into simulated
    /// memory).
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Rebuild from raw bits, masking out undefined bits.
    pub const fn from_bits(bits: u16) -> Perms {
        Perms(bits & Perms::all().0)
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl Not for Perms {
    type Output = Perms;
    fn not(self) -> Perms {
        Perms(!self.0 & Perms::all().0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let names = [
            (Perms::LOAD, "LOAD"),
            (Perms::STORE, "STORE"),
            (Perms::EXECUTE, "EXECUTE"),
            (Perms::LOAD_CAP, "LOAD_CAP"),
            (Perms::STORE_CAP, "STORE_CAP"),
            (Perms::SEAL, "SEAL"),
            (Perms::UNSEAL, "UNSEAL"),
            (Perms::SYSTEM, "SYSTEM"),
            (Perms::GLOBAL, "GLOBAL"),
            (Perms::INVOKE, "INVOKE"),
        ];
        write!(f, "Perms(")?;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_perms_contain_loads_and_stores() {
        let p = Perms::data();
        assert!(p.contains(Perms::LOAD));
        assert!(p.contains(Perms::STORE));
        assert!(p.contains(Perms::LOAD_CAP));
        assert!(p.contains(Perms::STORE_CAP));
        assert!(!p.contains(Perms::SYSTEM));
        assert!(!p.contains(Perms::EXECUTE));
    }

    #[test]
    fn subset_relation() {
        assert!(Perms::rodata().is_subset_of(Perms::data()));
        assert!(!Perms::data().is_subset_of(Perms::rodata()));
        assert!(Perms::empty().is_subset_of(Perms::empty()));
        assert!(Perms::all().is_subset_of(Perms::all()));
        assert!(!Perms::all().is_subset_of(Perms::data()));
    }

    #[test]
    fn bit_ops_round_trip() {
        let p = Perms::LOAD | Perms::STORE;
        assert_eq!(Perms::from_bits(p.bits()), p);
        assert_eq!(p & Perms::LOAD, Perms::LOAD);
        assert!((!p).contains(Perms::EXECUTE));
        assert!(!(!p).contains(Perms::LOAD));
    }

    #[test]
    fn from_bits_masks_undefined() {
        assert_eq!(Perms::from_bits(0xffff), Perms::all());
    }

    #[test]
    fn kernel_has_system_user_does_not() {
        assert!(Perms::kernel().contains(Perms::SYSTEM));
        assert!(!Perms::data().contains(Perms::SYSTEM));
        assert!(!Perms::code().contains(Perms::SYSTEM));
    }

    #[test]
    fn debug_formatting_lists_bits() {
        let s = format!("{:?}", Perms::LOAD | Perms::EXECUTE);
        assert!(s.contains("LOAD"));
        assert!(s.contains("EXECUTE"));
        assert_eq!(format!("{:?}", Perms::empty()), "Perms(-)");
    }
}
