//! Capability operation errors.

use core::fmt;

use crate::{OType, Perms};

/// Errors raised by capability derivation and access checks.
///
/// On real hardware most of these clear the validity tag of the result (for
/// derivations) or raise a capability fault (for accesses). The simulator
/// surfaces them as values so kernels and tests can react precisely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapError {
    /// Attempt to widen bounds beyond the parent capability.
    BoundsWiden,
    /// Attempt to add a permission the parent lacks.
    PermsWiden,
    /// Access outside `[base, base+len)`.
    OutOfBounds {
        /// Address at which the access started.
        addr: u64,
        /// Access length in bytes.
        len: u64,
    },
    /// Access without the required permission.
    PermissionDenied {
        /// The missing permission(s).
        missing: Perms,
    },
    /// Operation on a sealed capability that requires an unsealed one.
    Sealed(OType),
    /// Unseal with the wrong otype or without unseal authority.
    BadUnseal,
    /// Seal with an otype the sealing authority does not cover.
    BadSeal,
    /// Operation on an untagged (invalid) capability.
    TagCleared,
    /// Arithmetic overflowed the 64-bit address space.
    AddressOverflow,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::BoundsWiden => write!(f, "capability bounds cannot be widened"),
            CapError::PermsWiden => write!(f, "capability permissions cannot be widened"),
            CapError::OutOfBounds { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#x} is out of bounds")
            }
            CapError::PermissionDenied { missing } => {
                write!(f, "capability lacks required permission {missing:?}")
            }
            CapError::Sealed(ot) => write!(f, "capability is sealed with {ot:?}"),
            CapError::BadUnseal => write!(f, "unseal authority does not match"),
            CapError::BadSeal => write!(f, "seal authority does not cover otype"),
            CapError::TagCleared => write!(f, "capability tag is cleared"),
            CapError::AddressOverflow => write!(f, "capability address arithmetic overflowed"),
        }
    }
}

impl std::error::Error for CapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = CapError::OutOfBounds {
            addr: 0x1000,
            len: 16,
        };
        assert!(e.to_string().contains("0x1000"));
        assert!(CapError::TagCleared.to_string().contains("tag"));
    }
}
