//! A software model of the CHERI capability architecture.
//!
//! This crate reproduces the parts of CHERI that the μFork design depends
//! on (paper §2.4 and §4):
//!
//! * **Capabilities** ([`Capability`]) — bounded, permissioned fat pointers.
//!   Every memory reference a μprocess holds is a capability; dereferences
//!   are checked against bounds and permissions.
//! * **Monotonicity** — bounds and permissions can only ever be *narrowed*
//!   by derivation; any attempt to widen them fails (and, on real hardware,
//!   clears the validity tag). This is the invariant cross-μprocess
//!   isolation is built on (paper §4.3).
//! * **Sealing** ([`Capability::seal`]) — a sealed capability is immutable
//!   and non-dereferenceable until unsealed with a matching authority; μFork
//!   uses sealed entry capabilities for trap-less system calls (paper §4.4).
//! * **Tags** — a 1-bit validity tag per capability, stored out of band.
//!   Tag storage itself lives with the memory model (`ufork-mem`); this
//!   crate defines the capability values the tags protect.
//!
//! The model is *uncompressed*: a real Morello capability packs bounds into
//! 128 bits with the CHERI Concentrate encoding, losing precision for large
//! objects. We keep exact bounds — the μFork relocation logic never relies
//! on compression artifacts, and exact bounds make the isolation proofs in
//! the test suite sharper.
//!
//! # Examples
//!
//! ```
//! use ufork_cheri::{Capability, Perms};
//!
//! // A root capability over 1 MiB of address space.
//! let root = Capability::new_root(0x1000, 0x10_0000, Perms::data());
//! // Derive a narrower capability over one page; monotonic, so OK.
//! let page = root.with_bounds(0x2000, 0x1000).unwrap();
//! assert!(page.check_access(0x2000, 16, Perms::LOAD).is_ok());
//! // Widening back out is refused.
//! assert!(page.with_bounds(0x1000, 0x10_0000).is_err());
//! ```

mod capability;
pub mod compress;
mod error;
mod otype;
mod perms;

pub use capability::{Capability, CAP_ALIGN, CAP_SIZE};
pub use error::CapError;
pub use otype::OType;
pub use perms::Perms;
