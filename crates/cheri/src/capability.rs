//! The capability type and its monotonic derivation rules.

use core::fmt;

use crate::{CapError, OType, Perms};

/// Size in bytes of a capability in memory (Morello: 128-bit).
pub const CAP_SIZE: u64 = 16;

/// Required alignment of capabilities in memory.
///
/// Tag bits are kept per 16-byte granule, so capabilities must be 16-byte
/// aligned — the alignment requirement that forced the tinyalloc changes in
/// the paper's Unikraft port (§4.1).
pub const CAP_ALIGN: u64 = 16;

/// A CHERI capability: a bounded, permissioned, optionally sealed pointer.
///
/// A capability grants access to the address range `[base, base + len)`
/// with the permissions in `perms`. The *cursor* (`addr`) is the pointer
/// value arithmetic acts on; it may stray out of bounds (as on real CHERI),
/// but accesses are only permitted when the accessed range is fully in
/// bounds.
///
/// All derivation methods are **monotonic**: they can narrow bounds and
/// drop permissions but never the reverse. The only way to obtain authority
/// is to start from a broader capability — ultimately the kernel's root
/// capability minted at boot. This is the security invariant μFork's
/// cross-μprocess isolation rests on (paper §4.3).
///
/// Validity tags are *not* stored inside the capability value: they live in
/// the memory system (one bit per granule) and in register files. A
/// `Capability` value in Rust represents a *tagged* (valid) capability;
/// untagged data is represented as plain bytes by the memory model.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    base: u64,
    len: u64,
    addr: u64,
    perms: Perms,
    otype: Option<OType>,
}

impl Capability {
    /// Mints a new root capability.
    ///
    /// Only the kernel (at boot, or when carving μprocess regions out of
    /// its own root) should call this; everything a μprocess ever holds is
    /// derived from such a root. The simulator cannot enforce *who* calls
    /// `new_root` — the kernel crates confine it — but tests audit that no
    /// μprocess-reachable capability exceeds its region.
    pub const fn new_root(base: u64, len: u64, perms: Perms) -> Capability {
        Capability {
            base,
            len,
            addr: base,
            perms,
            otype: None,
        }
    }

    /// The inclusive lower bound.
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The length of the addressable range in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Returns true if the capability covers no bytes.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The exclusive upper bound (`base + len`), saturating.
    pub const fn top(&self) -> u64 {
        self.base.saturating_add(self.len)
    }

    /// The cursor (pointer value).
    pub const fn addr(&self) -> u64 {
        self.addr
    }

    /// The permission set.
    pub const fn perms(&self) -> Perms {
        self.perms
    }

    /// The otype if sealed.
    pub const fn otype(&self) -> Option<OType> {
        self.otype
    }

    /// Returns true if the capability is sealed.
    pub const fn is_sealed(&self) -> bool {
        self.otype.is_some()
    }

    /// Derives a capability with narrowed bounds `[base, base + len)`.
    ///
    /// Fails with [`CapError::BoundsWiden`] if the new range is not fully
    /// contained in the current range, with [`CapError::Sealed`] if sealed.
    /// The cursor is reset to the new base.
    pub fn with_bounds(&self, base: u64, len: u64) -> Result<Capability, CapError> {
        self.check_unsealed()?;
        let top = base.checked_add(len).ok_or(CapError::AddressOverflow)?;
        if base < self.base || top > self.top() {
            return Err(CapError::BoundsWiden);
        }
        Ok(Capability {
            base,
            len,
            addr: base,
            perms: self.perms,
            otype: None,
        })
    }

    /// Derives a capability with permissions `self.perms() & perms`.
    ///
    /// Mirrors the `CAndPerm` instruction: requesting permissions the
    /// parent lacks silently drops them, which is always monotonic.
    pub fn with_perms_masked(&self, perms: Perms) -> Result<Capability, CapError> {
        self.check_unsealed()?;
        Ok(Capability {
            perms: self.perms & perms,
            ..*self
        })
    }

    /// Derives a capability with exactly `perms`.
    ///
    /// Fails with [`CapError::PermsWiden`] if `perms` is not a subset of
    /// the current permissions.
    pub fn with_perms(&self, perms: Perms) -> Result<Capability, CapError> {
        self.check_unsealed()?;
        if !perms.is_subset_of(self.perms) {
            return Err(CapError::PermsWiden);
        }
        Ok(Capability { perms, ..*self })
    }

    /// Derives a capability with the cursor moved to `addr`.
    ///
    /// The cursor may leave the bounds (CHERI allows out-of-bounds
    /// pointers); only *accesses* are bounds-checked.
    pub fn with_addr(&self, addr: u64) -> Result<Capability, CapError> {
        self.check_unsealed()?;
        Ok(Capability { addr, ..*self })
    }

    /// Derives a capability with the cursor offset by `delta` bytes.
    pub fn offset(&self, delta: i64) -> Result<Capability, CapError> {
        self.check_unsealed()?;
        let addr = self
            .addr
            .checked_add_signed(delta)
            .ok_or(CapError::AddressOverflow)?;
        Ok(Capability { addr, ..*self })
    }

    /// Seals the capability with `otype` using `authority`.
    ///
    /// `authority` must be unsealed, carry [`Perms::SEAL`], and its bounds
    /// (interpreted as an otype space) must cover `otype.raw()`.
    pub fn seal(&self, otype: OType, authority: &Capability) -> Result<Capability, CapError> {
        self.check_unsealed()?;
        authority.check_unsealed()?;
        if !authority.perms.contains(Perms::SEAL) {
            return Err(CapError::PermissionDenied {
                missing: Perms::SEAL,
            });
        }
        let ot = u64::from(otype.raw());
        if ot < authority.base || ot >= authority.top() {
            return Err(CapError::BadSeal);
        }
        Ok(Capability {
            otype: Some(otype),
            ..*self
        })
    }

    /// Unseals a sealed capability using `authority`.
    ///
    /// `authority` must be unsealed, carry [`Perms::UNSEAL`], and cover the
    /// otype.
    pub fn unseal(&self, authority: &Capability) -> Result<Capability, CapError> {
        let otype = self.otype.ok_or(CapError::BadUnseal)?;
        authority.check_unsealed()?;
        if !authority.perms.contains(Perms::UNSEAL) {
            return Err(CapError::PermissionDenied {
                missing: Perms::UNSEAL,
            });
        }
        let ot = u64::from(otype.raw());
        if ot < authority.base || ot >= authority.top() {
            return Err(CapError::BadUnseal);
        }
        Ok(Capability {
            otype: None,
            ..*self
        })
    }

    /// Checks an access of `len` bytes at `addr` needing `required` perms.
    ///
    /// This is the dereference check performed (by hardware, on Morello;
    /// by the MMU model, here) on every user load/store.
    pub fn check_access(&self, addr: u64, len: u64, required: Perms) -> Result<(), CapError> {
        if let Some(ot) = self.otype {
            return Err(CapError::Sealed(ot));
        }
        if !self.perms.contains(required) {
            return Err(CapError::PermissionDenied {
                missing: required & !self.perms,
            });
        }
        let end = addr.checked_add(len).ok_or(CapError::AddressOverflow)?;
        if addr < self.base || end > self.top() {
            return Err(CapError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Checks an access at the cursor.
    pub fn check_cursor_access(&self, len: u64, required: Perms) -> Result<(), CapError> {
        self.check_access(self.addr, len, required)
    }

    /// Returns true if the capability's range lies fully inside
    /// `[region_base, region_base + region_len)`.
    ///
    /// μFork's relocation scan uses the negation of this predicate to
    /// identify capabilities that still point into the parent μprocess
    /// (paper §4.2): a capability found in child memory whose target or
    /// bounds escape the child's region must be relocated.
    pub fn confined_to(&self, region_base: u64, region_len: u64) -> bool {
        let region_top = region_base.saturating_add(region_len);
        self.base >= region_base && self.top() <= region_top && self.len <= region_len
    }

    /// Rederives this capability shifted by `delta` bytes, with authority
    /// from `root`.
    ///
    /// This is the relocation primitive (paper §4.2): the kernel, holding a
    /// root capability for the *child* region, rebases a stale
    /// parent-region capability into the child region. The result is
    /// derived from `root` — so it can never exceed the child region — with
    /// bounds additionally clamped to the intersection with `root`.
    ///
    /// Fails if the shifted range does not intersect `root` at all (which
    /// would indicate a kernel bug and is surfaced rather than masked).
    pub fn rebase(&self, delta: i64, root: &Capability) -> Result<Capability, CapError> {
        root.check_unsealed()?;
        let base = self
            .base
            .checked_add_signed(delta)
            .ok_or(CapError::AddressOverflow)?;
        let top = self
            .top()
            .checked_add_signed(delta)
            .ok_or(CapError::AddressOverflow)?;
        let addr = self
            .addr
            .checked_add_signed(delta)
            .ok_or(CapError::AddressOverflow)?;
        // Clamp to the root's range (restrict-to-μprocess, paper §4.2).
        let nbase = base.max(root.base);
        let ntop = top.min(root.top());
        if nbase > ntop {
            return Err(CapError::BoundsWiden);
        }
        let mut derived = root.with_bounds(nbase, ntop - nbase)?;
        derived = derived.with_perms(self.perms & root.perms)?;
        derived = derived.with_addr(addr)?;
        derived.otype = self.otype;
        Ok(derived)
    }

    /// Encodes the in-memory *data* view of the capability.
    ///
    /// When software reads a capability location as plain bytes, it sees
    /// the 64-bit cursor in the low 8 bytes and (in this model) a digest of
    /// bounds/permissions in the high 8 bytes. The tag is *not* part of the
    /// bytes — writing these bytes somewhere else does not create a valid
    /// capability.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.addr.to_le_bytes());
        let meta: u64 = (self.len.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ u64::from(self.perms.bits())
            ^ (u64::from(self.otype.map_or(0, OType::raw)) << 32);
        out[8..].copy_from_slice(&meta.to_le_bytes());
        out
    }

    fn check_unsealed(&self) -> Result<(), CapError> {
        match self.otype {
            Some(ot) => Err(CapError::Sealed(ot)),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cap[{:#x}..{:#x}) @{:#x} {:?}",
            self.base,
            self.top(),
            self.addr,
            self.perms
        )?;
        if let Some(ot) = self.otype {
            write!(f, " sealed:{ot:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Capability {
        Capability::new_root(0x1000, 0x1000, Perms::data())
    }

    #[test]
    fn root_construction() {
        let c = root();
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.len(), 0x1000);
        assert_eq!(c.top(), 0x2000);
        assert_eq!(c.addr(), 0x1000);
        assert!(!c.is_sealed());
    }

    #[test]
    fn narrowing_bounds_ok_widening_fails() {
        let c = root();
        let n = c.with_bounds(0x1100, 0x100).unwrap();
        assert_eq!(n.base(), 0x1100);
        assert_eq!(n.top(), 0x1200);
        assert_eq!(
            n.with_bounds(0x1000, 0x1000).unwrap_err(),
            CapError::BoundsWiden
        );
        assert_eq!(
            n.with_bounds(0x1100, 0x200).unwrap_err(),
            CapError::BoundsWiden
        );
        assert_eq!(
            n.with_bounds(0x10ff, 0x10).unwrap_err(),
            CapError::BoundsWiden
        );
    }

    #[test]
    fn bounds_overflow_detected() {
        let c = Capability::new_root(0, u64::MAX, Perms::data());
        assert_eq!(
            c.with_bounds(u64::MAX, 2).unwrap_err(),
            CapError::AddressOverflow
        );
    }

    #[test]
    fn perms_narrow_only() {
        let c = root();
        let ro = c.with_perms(Perms::LOAD | Perms::LOAD_CAP).unwrap();
        assert_eq!(
            ro.with_perms(Perms::data()).unwrap_err(),
            CapError::PermsWiden
        );
        // Masked derivation silently intersects.
        let m = ro.with_perms_masked(Perms::data()).unwrap();
        assert_eq!(m.perms(), Perms::LOAD | Perms::LOAD_CAP);
    }

    #[test]
    fn cursor_may_leave_bounds_but_access_may_not() {
        let c = root();
        let oob = c.with_addr(0x5000).unwrap();
        assert_eq!(oob.addr(), 0x5000);
        assert!(matches!(
            oob.check_cursor_access(1, Perms::LOAD),
            Err(CapError::OutOfBounds { .. })
        ));
        let inb = c.with_addr(0x1ff0).unwrap();
        assert!(inb.check_cursor_access(16, Perms::LOAD).is_ok());
        assert!(matches!(
            inb.check_cursor_access(17, Perms::LOAD),
            Err(CapError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn access_requires_permissions() {
        let c = root().with_perms(Perms::LOAD).unwrap();
        assert!(c.check_access(0x1000, 8, Perms::LOAD).is_ok());
        let err = c.check_access(0x1000, 8, Perms::STORE).unwrap_err();
        assert_eq!(
            err,
            CapError::PermissionDenied {
                missing: Perms::STORE
            }
        );
    }

    #[test]
    fn seal_unseal_round_trip() {
        let sealer = Capability::new_root(0, 64, Perms::SEAL | Perms::UNSEAL);
        let c = root();
        let sealed = c.seal(OType::SYSCALL_ENTRY, &sealer).unwrap();
        assert!(sealed.is_sealed());
        // Sealed caps are frozen.
        assert!(matches!(sealed.with_addr(0), Err(CapError::Sealed(_))));
        assert!(matches!(
            sealed.check_access(0x1000, 1, Perms::LOAD),
            Err(CapError::Sealed(_))
        ));
        let unsealed = sealed.unseal(&sealer).unwrap();
        assert_eq!(unsealed, c.with_addr(c.addr()).unwrap());
    }

    #[test]
    fn seal_requires_authority() {
        let no_perm = Capability::new_root(0, 64, Perms::empty());
        assert!(matches!(
            root().seal(OType::SYSCALL_ENTRY, &no_perm),
            Err(CapError::PermissionDenied { .. })
        ));
        // Authority bounds must cover the otype value.
        let narrow = Capability::new_root(10, 5, Perms::SEAL);
        assert_eq!(
            root().seal(OType::SYSCALL_ENTRY, &narrow).unwrap_err(),
            CapError::BadSeal
        );
    }

    #[test]
    fn unseal_wrong_otype_range_fails() {
        let sealer = Capability::new_root(0, 64, Perms::SEAL | Perms::UNSEAL);
        let sealed = root().seal(OType::new(40).unwrap(), &sealer).unwrap();
        let wrong = Capability::new_root(0, 8, Perms::UNSEAL);
        assert_eq!(sealed.unseal(&wrong).unwrap_err(), CapError::BadUnseal);
    }

    #[test]
    fn confined_to_detects_escapes() {
        let c = root(); // [0x1000, 0x2000)
        assert!(c.confined_to(0x1000, 0x1000));
        assert!(c.confined_to(0x0, 0x10000));
        assert!(!c.confined_to(0x1800, 0x1000)); // base below region
        assert!(!c.confined_to(0x0, 0x1800)); // top above region
    }

    #[test]
    fn rebase_shifts_and_confines() {
        // Parent region [0x1000,0x2000), child region [0x9000,0xa000).
        let child_root = Capability::new_root(0x9000, 0x1000, Perms::data());
        let parent_ptr = root()
            .with_bounds(0x1200, 0x100)
            .unwrap()
            .with_addr(0x1250)
            .unwrap();
        let reloc = parent_ptr.rebase(0x8000, &child_root).unwrap();
        assert_eq!(reloc.base(), 0x9200);
        assert_eq!(reloc.len(), 0x100);
        assert_eq!(reloc.addr(), 0x9250);
        assert!(reloc.confined_to(0x9000, 0x1000));
        assert_eq!(reloc.perms(), Perms::data());
    }

    #[test]
    fn rebase_clamps_to_root() {
        let child_root = Capability::new_root(0x9000, 0x1000, Perms::data());
        // Parent cap spans the WHOLE parent region plus change; after the
        // shift it must be clamped into the child root.
        let wide = Capability::new_root(0x0800, 0x2000, Perms::data());
        let reloc = wide.rebase(0x8000, &child_root).unwrap();
        assert_eq!(reloc.base(), 0x9000);
        assert_eq!(reloc.top(), 0xa000);
    }

    #[test]
    fn rebase_cannot_gain_perms() {
        let child_root = Capability::new_root(0x9000, 0x1000, Perms::rodata());
        let rw = root(); // data perms
        let reloc = rw.rebase(0x8000, &child_root).unwrap();
        assert!(!reloc.perms().contains(Perms::STORE));
    }

    #[test]
    fn to_bytes_low_half_is_cursor() {
        let c = root().with_addr(0x1234).unwrap();
        let b = c.to_bytes();
        assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), 0x1234);
    }
}
