//! Object types for capability sealing.

use core::fmt;

/// An object type ("otype") used to seal capabilities.
///
/// Sealing a capability with an otype freezes it: sealed capabilities
/// cannot be dereferenced or modified, only invoked (for sealed entry
/// capabilities) or unsealed by a capability whose bounds cover the otype
/// and which carries [`crate::Perms::UNSEAL`].
///
/// μFork reserves a small set of well-known otypes for its trap-less
/// system-call entry capabilities.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OType(u32);

impl OType {
    /// Maximum representable otype (Morello dedicates 15 bits; we keep 18
    /// like CHERI-RISC-V to leave headroom for per-μprocess otypes).
    pub const MAX: u32 = (1 << 18) - 1;

    /// The otype μFork seals its system-call entry capability with.
    pub const SYSCALL_ENTRY: OType = OType(1);

    /// Otype sealing the per-thread kernel context switchers.
    pub const KERNEL_CONTEXT: OType = OType(2);

    /// Otype sealing shared-memory ring endpoint capabilities: a program
    /// holds a sealed view of the ring window it cannot dereference, and
    /// presents it to push/pop where the kernel unseals it. Fork
    /// relocates these like any other register capability, seal intact.
    pub const RING_ENDPOINT: OType = OType(3);

    /// First otype available for dynamic allocation by the kernel.
    pub const FIRST_DYNAMIC: OType = OType(16);

    /// Creates an otype from a raw value.
    ///
    /// Returns `None` if the value exceeds [`OType::MAX`].
    pub const fn new(raw: u32) -> Option<OType> {
        if raw <= OType::MAX {
            Some(OType(raw))
        } else {
            None
        }
    }

    /// The raw otype value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OType::SYSCALL_ENTRY => write!(f, "OType(SYSCALL_ENTRY)"),
            OType::KERNEL_CONTEXT => write!(f, "OType(KERNEL_CONTEXT)"),
            OType(v) => write!(f, "OType({v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_respects_max() {
        assert!(OType::new(0).is_some());
        assert!(OType::new(OType::MAX).is_some());
        assert!(OType::new(OType::MAX + 1).is_none());
    }

    #[test]
    fn well_known_otypes_are_distinct() {
        assert_ne!(OType::SYSCALL_ENTRY, OType::KERNEL_CONTEXT);
        assert_ne!(OType::SYSCALL_ENTRY, OType::RING_ENDPOINT);
        assert_ne!(OType::KERNEL_CONTEXT, OType::RING_ENDPOINT);
        assert!(OType::SYSCALL_ENTRY.raw() < OType::FIRST_DYNAMIC.raw());
        assert!(OType::KERNEL_CONTEXT.raw() < OType::FIRST_DYNAMIC.raw());
        assert!(OType::RING_ENDPOINT.raw() < OType::FIRST_DYNAMIC.raw());
    }
}
