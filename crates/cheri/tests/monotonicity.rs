//! Property tests for capability monotonicity.
//!
//! The isolation argument of μFork (paper §4.3) rests on one hardware
//! invariant: *no sequence of capability derivations can increase
//! authority*. These tests drive arbitrary derivation chains and assert
//! the invariant holds in the model. Runs on the in-repo `ufork-testkit`
//! harness (offline; default-on `props` feature).
#![cfg(feature = "props")]

use ufork_cheri::{CapError, Capability, OType, Perms};
use ufork_testkit::{forall, no_shrink, shrink_vec, PropConfig, Rng};

fn cfg() -> PropConfig {
    PropConfig::from_env(512)
}

/// A single derivation step a program could attempt.
#[derive(Clone, Debug)]
enum Step {
    Bounds { base_off: u64, len: u64 },
    PermsMask(u16),
    Addr(u64),
    Offset(i64),
    SealUnseal(u32),
}

fn gen_step(rng: &mut Rng) -> Step {
    match rng.below(5) {
        0 => Step::Bounds {
            base_off: rng.below(0x4000),
            len: rng.below(0x4000),
        },
        1 => Step::PermsMask(rng.next_u64() as u16),
        2 => Step::Addr(rng.below(0x10_0000)),
        3 => Step::Offset((rng.next_u64() as i64) % 0x10000),
        _ => Step::SealUnseal(rng.below(64) as u32),
    }
}

/// Authority comparison: `a` has no more authority than `b`.
fn no_more_authority(a: &Capability, b: &Capability) -> bool {
    a.base() >= b.base() && a.top() <= b.top() && a.perms().is_subset_of(b.perms())
}

/// Any chain of successful derivations yields a capability with no more
/// authority than the original.
#[test]
fn derivation_chains_never_widen() {
    forall(
        "derivation_chains_never_widen",
        &cfg(),
        |rng| {
            let n = rng.range(1, 24) as usize;
            (0..n).map(|_| gen_step(rng)).collect::<Vec<Step>>()
        },
        |steps| shrink_vec(steps),
        |steps| {
            let root = Capability::new_root(0x1000, 0x4000, Perms::data());
            let sealer = Capability::new_root(0, 64, Perms::SEAL | Perms::UNSEAL);
            let mut cur = root;
            for step in steps {
                let next = match step {
                    Step::Bounds { base_off, len } => {
                        cur.with_bounds(cur.base().saturating_add(*base_off), *len)
                    }
                    Step::PermsMask(bits) => cur.with_perms_masked(Perms::from_bits(*bits)),
                    Step::Addr(a) => cur.with_addr(*a),
                    Step::Offset(d) => cur.offset(*d),
                    Step::SealUnseal(o) => {
                        let ot = OType::new(*o).unwrap();
                        cur.seal(ot, &sealer).and_then(|s| s.unseal(&sealer))
                    }
                };
                if let Ok(n) = next {
                    cur = n;
                }
                if !no_more_authority(&cur, &root) {
                    return Err(format!("derived {cur:?} exceeds root {root:?}"));
                }
            }
            Ok(())
        },
    );
}

/// Accesses permitted through a derived capability are always permitted
/// through the capability it was derived from (access monotonicity).
#[test]
fn permitted_access_implies_parent_permits() {
    forall(
        "permitted_access_implies_parent_permits",
        &cfg(),
        |rng| {
            (
                rng.below(0x1000),
                rng.range(1, 0x1000),
                rng.below(0x6000),
                rng.range(1, 64),
            )
        },
        no_shrink,
        |&(base_off, len, at, n)| {
            let root = Capability::new_root(0x1000, 0x4000, Perms::data());
            if let Ok(derived) = root.with_bounds(0x1000 + base_off, len) {
                if derived.check_access(at, n, Perms::LOAD).is_ok()
                    && root.check_access(at, n, Perms::LOAD).is_err()
                {
                    return Err(format!(
                        "derived permits [{at:#x},+{n}) but root refuses it"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// A rebased (relocated) capability is always confined to the root it was
/// rebased against — the key soundness property of μFork's relocation
/// engine.
#[test]
fn rebase_always_confined() {
    forall(
        "rebase_always_confined",
        &cfg(),
        |rng| {
            (
                rng.range(0x1000, 0x2000),
                rng.below(0x1000),
                rng.below(0x4000),
            )
        },
        no_shrink,
        |&(base, len, addr)| {
            let parent_root = Capability::new_root(0x1000, 0x1000, Perms::data());
            let child_root = Capability::new_root(0x9000, 0x1000, Perms::data());
            let top = (base + len).min(parent_root.top());
            let base = base.min(top);
            let cap = parent_root
                .with_bounds(base, top - base)
                .unwrap()
                .with_addr(addr)
                .unwrap();
            match cap.rebase(0x8000, &child_root) {
                Ok(r) => {
                    if r.confined_to(child_root.base(), child_root.len()) {
                        Ok(())
                    } else {
                        Err(format!("rebased {r:?} escapes child root"))
                    }
                }
                Err(CapError::BoundsWiden) | Err(CapError::AddressOverflow) => Ok(()),
                Err(e) => Err(format!("unexpected rebase error {e:?}")),
            }
        },
    );
}

/// Sealed capabilities are completely frozen: every mutating derivation
/// fails until unsealed.
#[test]
fn sealed_caps_frozen() {
    forall(
        "sealed_caps_frozen",
        &cfg(),
        |rng| (rng.below(64) as u32, rng.next_u64()),
        no_shrink,
        |&(otype, addr)| {
            let sealer = Capability::new_root(0, 64, Perms::SEAL | Perms::UNSEAL);
            let cap = Capability::new_root(0x1000, 0x1000, Perms::data());
            let sealed = cap.seal(OType::new(otype).unwrap(), &sealer).unwrap();
            let frozen = sealed.with_addr(addr).is_err()
                && sealed.with_bounds(0x1000, 1).is_err()
                && sealed.with_perms_masked(Perms::LOAD).is_err()
                && sealed.offset(1).is_err()
                && sealed.check_access(0x1000, 1, Perms::LOAD).is_err();
            if frozen {
                Ok(())
            } else {
                Err(format!("sealed cap (otype {otype}) allowed a derivation"))
            }
        },
    );
}
