//! Property tests for capability monotonicity.
//!
//! The isolation argument of μFork (paper §4.3) rests on one hardware
//! invariant: *no sequence of capability derivations can increase
//! authority*. These tests drive arbitrary derivation chains and assert the
//! invariant holds in the model.

use proptest::prelude::*;
use ufork_cheri::{CapError, Capability, OType, Perms};

/// A single derivation step a program could attempt.
#[derive(Clone, Debug)]
enum Step {
    Bounds { base_off: u64, len: u64 },
    PermsMask(u16),
    Addr(u64),
    Offset(i64),
    SealUnseal(u32),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(base_off, len)| Step::Bounds {
            base_off: base_off % 0x4000,
            len: len % 0x4000,
        }),
        any::<u16>().prop_map(Step::PermsMask),
        any::<u64>().prop_map(|a| Step::Addr(a % 0x10_0000)),
        any::<i64>().prop_map(|d| Step::Offset(d % 0x10000)),
        any::<u32>().prop_map(|o| Step::SealUnseal(o % 64)),
    ]
}

/// Authority comparison: `a` has no more authority than `b`.
fn no_more_authority(a: &Capability, b: &Capability) -> bool {
    a.base() >= b.base() && a.top() <= b.top() && a.perms().is_subset_of(b.perms())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any chain of successful derivations yields a capability with no
    /// more authority than the original.
    #[test]
    fn derivation_chains_never_widen(steps in proptest::collection::vec(step_strategy(), 1..24)) {
        let root = Capability::new_root(0x1000, 0x4000, Perms::data());
        let sealer = Capability::new_root(0, 64, Perms::SEAL | Perms::UNSEAL);
        let mut cur = root;
        for step in steps {
            let next = match step {
                Step::Bounds { base_off, len } => cur.with_bounds(cur.base().saturating_add(base_off), len),
                Step::PermsMask(bits) => cur.with_perms_masked(Perms::from_bits(bits)),
                Step::Addr(a) => cur.with_addr(a),
                Step::Offset(d) => cur.offset(d),
                Step::SealUnseal(o) => {
                    let ot = OType::new(o).unwrap();
                    cur.seal(ot, &sealer).and_then(|s| s.unseal(&sealer))
                }
            };
            if let Ok(n) = next {
                cur = n;
            }
            prop_assert!(no_more_authority(&cur, &root),
                "derived {:?} exceeds root {:?}", cur, root);
        }
    }

    /// Accesses permitted through a derived capability are always permitted
    /// through the capability it was derived from (access monotonicity).
    #[test]
    fn permitted_access_implies_parent_permits(
        base_off in 0u64..0x1000,
        len in 1u64..0x1000,
        at in 0u64..0x6000,
        n in 1u64..64,
    ) {
        let root = Capability::new_root(0x1000, 0x4000, Perms::data());
        if let Ok(derived) = root.with_bounds(0x1000 + base_off, len) {
            if derived.check_access(at, n, Perms::LOAD).is_ok() {
                prop_assert!(root.check_access(at, n, Perms::LOAD).is_ok());
            }
        }
    }

    /// A rebased (relocated) capability is always confined to the root it
    /// was rebased against — the key soundness property of μFork's
    /// relocation engine.
    #[test]
    fn rebase_always_confined(
        base in 0x1000u64..0x2000,
        len in 0u64..0x1000,
        addr in 0u64..0x4000,
    ) {
        let parent_root = Capability::new_root(0x1000, 0x1000, Perms::data());
        let child_root = Capability::new_root(0x9000, 0x1000, Perms::data());
        let top = (base + len).min(parent_root.top());
        let base = base.min(top);
        let cap = parent_root
            .with_bounds(base, top - base)
            .unwrap()
            .with_addr(addr)
            .unwrap();
        match cap.rebase(0x8000, &child_root) {
            Ok(r) => prop_assert!(r.confined_to(child_root.base(), child_root.len())),
            Err(e) => prop_assert!(
                matches!(e, CapError::BoundsWiden | CapError::AddressOverflow),
                "unexpected rebase error {e:?}"
            ),
        }
    }

    /// Sealed capabilities are completely frozen: every mutating derivation
    /// fails until unsealed.
    #[test]
    fn sealed_caps_frozen(otype in 0u32..64, addr in any::<u64>()) {
        let sealer = Capability::new_root(0, 64, Perms::SEAL | Perms::UNSEAL);
        let cap = Capability::new_root(0x1000, 0x1000, Perms::data());
        let sealed = cap.seal(OType::new(otype).unwrap(), &sealer).unwrap();
        prop_assert!(sealed.with_addr(addr).is_err());
        prop_assert!(sealed.with_bounds(0x1000, 1).is_err());
        prop_assert!(sealed.with_perms_masked(Perms::LOAD).is_err());
        prop_assert!(sealed.offset(1).is_err());
        prop_assert!(sealed.check_access(0x1000, 1, Perms::LOAD).is_err());
    }
}
