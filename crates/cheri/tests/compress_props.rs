//! Property tests for the Morello bounds-compression model.
//!
//! Ported from `proptest` to the in-repo `ufork-testkit` harness so the
//! suite runs without crates.io access. Gated behind the default-on
//! `props` feature.
#![cfg(feature = "props")]

use ufork_cheri::compress::{is_representable, representable, representable_len, MANTISSA_BITS};
use ufork_testkit::{forall, no_shrink, PropConfig};

fn cfg() -> PropConfig {
    PropConfig::from_env(512)
}

/// The representable range always contains the requested range.
#[test]
fn representable_contains_request() {
    forall(
        "representable_contains_request",
        &cfg(),
        |rng| (rng.next_u64(), rng.below(1 << 40)),
        no_shrink,
        |&(base, len)| {
            let r = representable(base, len);
            if r.base <= base && r.top >= base.saturating_add(len) {
                Ok(())
            } else {
                Err(format!("range [{:#x},{:#x}) not contained", r.base, r.top))
            }
        },
    );
}

/// The rounding is tight: at most one alignment unit each side.
#[test]
fn rounding_is_tight() {
    forall(
        "rounding_is_tight",
        &cfg(),
        |rng| (rng.next_u64(), rng.range(1, 1 << 40)),
        no_shrink,
        |&(base, len)| {
            let r = representable(base, len);
            let unit = 1u64 << r.exponent;
            if base - r.base >= unit {
                return Err(format!("base slack {:#x} >= unit {unit:#x}", base - r.base));
            }
            if r.top != u64::MAX && r.top - base.saturating_add(len) >= unit {
                return Err(format!("top slack >= unit {unit:#x}"));
            }
            Ok(())
        },
    );
}

/// Small lengths are always exact, regardless of the base.
#[test]
fn small_lengths_exact() {
    forall(
        "small_lengths_exact",
        &cfg(),
        |rng| (rng.next_u64(), rng.below(1 << MANTISSA_BITS)),
        no_shrink,
        |&(base, len)| {
            if is_representable(base, len) {
                Ok(())
            } else {
                Err(format!("({base:#x}, {len:#x}) not exactly representable"))
            }
        },
    );
}

/// Padded lengths are exactly representable at any aligned base, and the
/// padding function is idempotent.
#[test]
fn padded_lengths_representable() {
    forall(
        "padded_lengths_representable",
        &cfg(),
        |rng| rng.range(1, 1 << 40),
        no_shrink,
        |&len| {
            let padded = representable_len(len);
            if padded < len {
                return Err(format!("padded {padded:#x} < requested {len:#x}"));
            }
            if !is_representable(0, padded) {
                return Err(format!("padded {padded:#x} not representable at 0"));
            }
            if representable_len(padded) != padded {
                return Err(format!("representable_len not idempotent at {padded:#x}"));
            }
            Ok(())
        },
    );
}

/// Representable-ness is preserved under shifting by the alignment unit —
/// the property μFork's relocation relies on: regions share a layout, so a
/// representable bound stays representable after the rebase as long as
/// region bases are aligned at least as strongly.
#[test]
fn shift_by_unit_preserves_representability() {
    forall(
        "shift_by_unit_preserves_representability",
        &cfg(),
        |rng| {
            (
                rng.below(1 << 40),
                rng.range(1, 1 << 32),
                rng.range(1, 1024),
            )
        },
        no_shrink,
        |&(base, len, k)| {
            let r = representable(base, len);
            if r.base == base && r.top == base + len {
                let unit = 1u64 << r.exponent;
                let shifted = base + k * unit;
                if !is_representable(shifted, len) {
                    return Err(format!("shift by {k}x{unit:#x} broke representability"));
                }
            }
            Ok(())
        },
    );
}
