//! Property tests for the Morello bounds-compression model.

use proptest::prelude::*;
use ufork_cheri::compress::{is_representable, representable, representable_len, MANTISSA_BITS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The representable range always contains the requested range.
    #[test]
    fn representable_contains_request(base in any::<u64>(), len in 0u64..(1 << 40)) {
        let r = representable(base, len);
        prop_assert!(r.base <= base);
        prop_assert!(r.top >= base.saturating_add(len));
    }

    /// The rounding is tight: at most one alignment unit each side.
    #[test]
    fn rounding_is_tight(base in any::<u64>(), len in 1u64..(1 << 40)) {
        let r = representable(base, len);
        let unit = 1u64 << r.exponent;
        prop_assert!(base - r.base < unit);
        if r.top != u64::MAX {
            prop_assert!(r.top - base.saturating_add(len) < unit);
        }
    }

    /// Small lengths are always exact, regardless of the base.
    #[test]
    fn small_lengths_exact(base in any::<u64>(), len in 0u64..(1 << MANTISSA_BITS)) {
        prop_assert!(is_representable(base, len));
    }

    /// Padded lengths are exactly representable at any base aligned to
    /// the padded length's exponent.
    #[test]
    fn padded_lengths_representable(len in 1u64..(1 << 40)) {
        let padded = representable_len(len);
        prop_assert!(padded >= len);
        prop_assert!(is_representable(0, padded));
        // Idempotent.
        prop_assert_eq!(representable_len(padded), padded);
    }

    /// Representable-ness is preserved under shifting by the alignment
    /// unit — the property μFork's relocation relies on: regions share a
    /// layout, so a representable bound stays representable after the
    /// rebase as long as region bases are aligned at least as strongly.
    #[test]
    fn shift_by_unit_preserves_representability(
        base in (0u64..(1 << 40)),
        len in 1u64..(1 << 32),
        k in 1u64..1024,
    ) {
        let r = representable(base, len);
        if r.base == base && r.top == base + len {
            let unit = 1u64 << r.exponent;
            let shifted = base + k * unit;
            prop_assert!(
                is_representable(shifted, len),
                "shift by {k}x{unit:#x} broke representability"
            );
        }
    }
}
