//! Machine-level IPC semantics against a mock backend whose shm objects
//! are *genuinely shared* between processes (unlike `machine_mock`'s
//! per-process flat buffers): pipe wake/EOF/EPIPE paths, bounded-pipe
//! backpressure, and the shared-memory ring fabric across fork — all on
//! both scheduler engines, bit-identically.

use std::collections::BTreeMap;

use ufork_abi::{
    BlockingCall, Capability, Env, Errno, Fd, ForkResult, ImageSpec, IsolationLevel, Pid, Program,
    ProgramBox, Resume, StepOutcome, SysResult, RING_EOF,
};
use ufork_cheri::Perms;
use ufork_exec::{Ctx, Machine, MachineConfig, MemOs, SchedEngine};
use ufork_mem::MemStats;
use ufork_sim::CostModel;

const MOCK_LEN: u64 = 128 * 1024;
/// Shm windows live in their own address range so loads/stores route to
/// the shared object rather than the caller's private buffer.
const SHM_BASE: u64 = 1 << 32;
const SHM_STRIDE: u64 = 1 << 20;

/// Flat per-process memory plus named, refcount-free shared objects:
/// just enough of a backend for pipes and rings to be exercised for
/// real (a ring pushed by one process must be visible to another).
struct IpcOs {
    cost: CostModel,
    procs: BTreeMap<Pid, (Vec<u8>, Vec<Option<Capability>>)>,
    shm: Vec<Vec<u8>>,
    shm_names: Vec<String>,
}

impl IpcOs {
    fn new() -> IpcOs {
        IpcOs {
            cost: CostModel::morello(),
            procs: BTreeMap::new(),
            shm: Vec::new(),
            shm_names: Vec::new(),
        }
    }
}

impl MemOs for IpcOs {
    fn cost(&self) -> &CostModel {
        &self.cost
    }
    fn spawn(&mut self, _ctx: &mut Ctx, pid: Pid, _image: &ImageSpec) -> SysResult<()> {
        let mut regs = vec![None; 16];
        regs[0] = Some(Capability::new_root(
            u64::from(pid.0) << 20,
            MOCK_LEN,
            Perms::data(),
        ));
        self.procs.insert(pid, (vec![0; MOCK_LEN as usize], regs));
        Ok(())
    }
    fn fork(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        ctx.kernel(self.cost.fork_fixed_ufork);
        // Registers are copied wholesale — this is the mock's stand-in
        // for the register relocation walk, so sealed ring endpoints in
        // high registers survive into the child.
        let (mem, mut regs) = self.procs.get(&parent).ok_or(Errno::Inval)?.clone();
        regs[0] = Some(Capability::new_root(
            u64::from(child.0) << 20,
            MOCK_LEN,
            Perms::data(),
        ));
        self.procs.insert(child, (mem, regs));
        Ok(())
    }
    fn destroy(&mut self, _ctx: &mut Ctx, pid: Pid) {
        self.procs.remove(&pid);
    }
    fn load(&mut self, _c: &mut Ctx, pid: Pid, cap: &Capability, buf: &mut [u8]) -> SysResult<()> {
        if cap.addr() >= SHM_BASE {
            let idx = ((cap.addr() - SHM_BASE) / SHM_STRIDE) as usize;
            let off = ((cap.addr() - SHM_BASE) % SHM_STRIDE) as usize;
            let obj = self.shm.get(idx).ok_or(Errno::Fault)?;
            buf.copy_from_slice(&obj[off..off + buf.len()]);
            return Ok(());
        }
        let (mem, _) = self.procs.get(&pid).ok_or(Errno::Inval)?;
        let off = (cap.addr() & 0xf_ffff) as usize;
        buf.copy_from_slice(&mem[off..off + buf.len()]);
        Ok(())
    }
    fn store(&mut self, _c: &mut Ctx, pid: Pid, cap: &Capability, data: &[u8]) -> SysResult<()> {
        if cap.addr() >= SHM_BASE {
            let idx = ((cap.addr() - SHM_BASE) / SHM_STRIDE) as usize;
            let off = ((cap.addr() - SHM_BASE) % SHM_STRIDE) as usize;
            let obj = self.shm.get_mut(idx).ok_or(Errno::Fault)?;
            obj[off..off + data.len()].copy_from_slice(data);
            return Ok(());
        }
        let (mem, _) = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let off = (cap.addr() & 0xf_ffff) as usize;
        mem[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
    fn load_cap(
        &mut self,
        _c: &mut Ctx,
        _p: Pid,
        _cap: &Capability,
    ) -> SysResult<Option<Capability>> {
        Ok(None)
    }
    fn store_cap(
        &mut self,
        _c: &mut Ctx,
        _p: Pid,
        _cap: &Capability,
        _v: &Capability,
    ) -> SysResult<()> {
        Ok(())
    }
    fn malloc(&mut self, _c: &mut Ctx, pid: Pid, _len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            4096,
            Perms::data(),
        ))
    }
    fn mfree(&mut self, _c: &mut Ctx, _p: Pid, _cap: &Capability) -> SysResult<()> {
        Ok(())
    }
    fn reg(&self, pid: Pid, idx: usize) -> SysResult<Capability> {
        self.procs
            .get(&pid)
            .and_then(|(_, r)| r.get(idx).copied().flatten())
            .ok_or(Errno::Inval)
    }
    fn set_reg(&mut self, pid: Pid, idx: usize, cap: Capability) -> SysResult<()> {
        let (_, regs) = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        *regs.get_mut(idx).ok_or(Errno::Inval)? = Some(cap);
        Ok(())
    }
    fn shm_open(&mut self, _c: &mut Ctx, _pid: Pid, name: &str, len: u64) -> SysResult<Capability> {
        let idx = match self.shm_names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.shm_names.push(name.to_string());
                self.shm.push(vec![0; len as usize]);
                self.shm_names.len() - 1
            }
        };
        Ok(Capability::new_root(
            SHM_BASE + idx as u64 * SHM_STRIDE,
            len,
            Perms::data(),
        ))
    }
    fn mmap_anon(&mut self, _c: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            len,
            Perms::data(),
        ))
    }
    fn syscall_entry_cost(&self) -> f64 {
        100.0
    }
    fn syscall_is_trap(&self) -> bool {
        false
    }
    fn ctx_switch_cost(&self, _f: Pid, _t: Pid) -> f64 {
        1000.0
    }
    fn big_kernel_lock(&self) -> bool {
        false
    }
    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Fault
    }
    fn copyio_cost_per_byte(&self) -> f64 {
        0.0
    }
    fn mem_stats(&self, _pid: Pid) -> MemStats {
        MemStats::default()
    }
    fn allocated_frames(&self) -> u32 {
        self.procs.len() as u32 * 16
    }
    fn peak_frames(&self) -> u32 {
        self.allocated_frames()
    }
    fn audit_isolation(&self, _pid: Pid) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Pipe wake semantics.
// ---------------------------------------------------------------------------

/// Parks on an empty pipe; records whether the read returned EOF.
#[derive(Clone)]
struct EofReader {
    rfd: Fd,
    got_eof: bool,
}
impl Program for EofReader {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => StepOutcome::Block(BlockingCall::Read {
                fd: self.rfd,
                buf: env.reg(0).unwrap(),
                len: 4,
            }),
            Resume::Ret(Ok(0)) => {
                self.got_eof = true;
                StepOutcome::Exit(0)
            }
            _ => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Spawns two readers on one pipe, lets them park, closes the write end,
/// and joins both. Completing at all proves BOTH readers were woken by
/// the single hangup — the regression this pins is `pipe_drop_end`
/// waking at most one.
#[derive(Clone)]
struct TwoReaderMain {
    phase: u8,
    wfd: Option<Fd>,
    tids: Vec<u64>,
}
impl Program for TwoReaderMain {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match self.phase {
            0 => {
                let (r, w) = env.sys_pipe().expect("pipe");
                self.wfd = Some(w);
                self.phase = 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(EofReader {
                        rfd: r,
                        got_eof: false,
                    })),
                })
            }
            1 => {
                let Resume::Ret(Ok(tid)) = input else {
                    return StepOutcome::Exit(1);
                };
                self.tids.push(tid);
                let rfd = Fd(self.wfd.unwrap().0 - 1);
                self.phase = 2;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(EofReader {
                        rfd,
                        got_eof: false,
                    })),
                })
            }
            2 => {
                let Resume::Ret(Ok(tid)) = input else {
                    return StepOutcome::Exit(1);
                };
                self.tids.push(tid);
                self.phase = 3;
                // Let both readers run and park on the empty pipe.
                StepOutcome::Block(BlockingCall::Sleep { ns: 1e6 })
            }
            3 => {
                env.sys_close(self.wfd.unwrap()).expect("close write end");
                self.phase = 4;
                StepOutcome::Block(BlockingCall::JoinThread { tid: self.tids[0] })
            }
            4 => {
                self.phase = 5;
                StepOutcome::Block(BlockingCall::JoinThread { tid: self.tids[1] })
            }
            _ => match input {
                Resume::Ret(Ok(0)) => StepOutcome::Exit(0),
                _ => StepOutcome::Exit(1),
            },
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn closing_last_write_end_wakes_every_blocked_reader() {
    for engine in [SchedEngine::Lockstep, SchedEngine::EventDriven] {
        let mut m = Machine::new(
            IpcOs::new(),
            MachineConfig {
                cores: 2,
                engine,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(TwoReaderMain {
                    phase: 0,
                    wfd: None,
                    tids: Vec::new(),
                }),
            )
            .unwrap();
        m.run();
        assert_eq!(
            m.exit_code(pid),
            Some(0),
            "{engine:?}: join of both readers"
        );
        for tid in [1u32, 2] {
            let r = m.thread_program::<EofReader>(pid, tid).unwrap();
            assert!(r.got_eof, "{engine:?}: reader {tid} saw EOF");
        }
    }
}

/// Sleeps, then drains a large chunk so a blocked writer can proceed.
#[derive(Clone)]
struct DrainReader {
    rfd: Fd,
    phase: u8,
    read_at: Option<f64>,
}
impl Program for DrainReader {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match self.phase {
            0 => {
                self.phase = 1;
                StepOutcome::Block(BlockingCall::Sleep { ns: 2e6 })
            }
            1 => {
                self.phase = 2;
                StepOutcome::Block(BlockingCall::Read {
                    fd: self.rfd,
                    buf: env.reg(0).unwrap(),
                    len: 48_000,
                })
            }
            _ => match input {
                Resume::Ret(Ok(n)) if n > 0 => {
                    self.read_at = Some(env.now());
                    StepOutcome::Exit(0)
                }
                _ => StepOutcome::Exit(1),
            },
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Fills the pipe past capacity: the second write must block until the
/// reader drains, then complete in full (all-or-nothing semantics).
#[derive(Clone)]
struct BackpressureWriter {
    phase: u8,
    wfd: Option<Fd>,
    tid: u64,
    wrote_at: Option<f64>,
}
impl Program for BackpressureWriter {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match self.phase {
            0 => {
                let (r, w) = env.sys_pipe().expect("pipe");
                self.wfd = Some(w);
                self.phase = 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(DrainReader {
                        rfd: r,
                        phase: 0,
                        read_at: None,
                    })),
                })
            }
            1 => {
                let Resume::Ret(Ok(tid)) = input else {
                    return StepOutcome::Exit(1);
                };
                self.tid = tid;
                let buf = env.reg(0).unwrap();
                // First 48 KB fit the 64 KB pipe synchronously...
                assert_eq!(env.sys_write(self.wfd.unwrap(), &buf, 48_000), Ok(48_000));
                // ...and the same write again must report EAGAIN.
                assert_eq!(
                    env.sys_write(self.wfd.unwrap(), &buf, 48_000),
                    Err(Errno::Again)
                );
                self.phase = 2;
                StepOutcome::Block(BlockingCall::Write {
                    fd: self.wfd.unwrap(),
                    buf,
                    len: 48_000,
                })
            }
            2 => {
                let Resume::Ret(Ok(48_000)) = input else {
                    return StepOutcome::Exit(1);
                };
                self.wrote_at = Some(env.now());
                env.sys_close(self.wfd.unwrap()).unwrap();
                self.phase = 3;
                StepOutcome::Block(BlockingCall::JoinThread { tid: self.tid })
            }
            _ => StepOutcome::Exit(0),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn blocked_writer_wakes_when_reader_drains() {
    for engine in [SchedEngine::Lockstep, SchedEngine::EventDriven] {
        let mut m = Machine::new(
            IpcOs::new(),
            MachineConfig {
                cores: 2,
                engine,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(BackpressureWriter {
                    phase: 0,
                    wfd: None,
                    tid: 0,
                    wrote_at: None,
                }),
            )
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0), "{engine:?}");
        let w = m.program::<BackpressureWriter>(pid).unwrap();
        let r = m.thread_program::<DrainReader>(pid, 1).unwrap();
        let (wrote, read) = (w.wrote_at.unwrap(), r.read_at.unwrap());
        assert!(
            wrote >= 2e6 && wrote >= read,
            "{engine:?}: write completed at {wrote}, after the drain at {read}"
        );
    }
}

/// Closes the read end out from under a blocked writer.
#[derive(Clone)]
struct ReadEndCloser {
    rfd: Fd,
    phase: u8,
}
impl Program for ReadEndCloser {
    fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
        if self.phase == 0 {
            self.phase = 1;
            return StepOutcome::Block(BlockingCall::Sleep { ns: 1e6 });
        }
        env.sys_close(self.rfd).expect("close read end");
        StepOutcome::Exit(0)
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A writer blocked on a full pipe must fail with EPIPE (`BadFd`), not
/// hang, when the last read end closes.
#[derive(Clone)]
struct EpipeWriter {
    phase: u8,
    wfd: Option<Fd>,
    tid: u64,
}
impl Program for EpipeWriter {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match self.phase {
            0 => {
                let (r, w) = env.sys_pipe().expect("pipe");
                self.wfd = Some(w);
                self.phase = 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(ReadEndCloser { rfd: r, phase: 0 })),
                })
            }
            1 => {
                let Resume::Ret(Ok(tid)) = input else {
                    return StepOutcome::Exit(1);
                };
                self.tid = tid;
                let buf = env.reg(0).unwrap();
                // Fill the pipe to capacity so the next write parks.
                assert_eq!(
                    env.sys_write(self.wfd.unwrap(), &buf, 64 * 1024),
                    Ok(65_536)
                );
                self.phase = 2;
                StepOutcome::Block(BlockingCall::Write {
                    fd: self.wfd.unwrap(),
                    buf,
                    len: 8,
                })
            }
            2 => {
                let Resume::Ret(Err(Errno::BadFd)) = input else {
                    return StepOutcome::Exit(1);
                };
                env.sys_close(self.wfd.unwrap()).unwrap();
                self.phase = 3;
                StepOutcome::Block(BlockingCall::JoinThread { tid: self.tid })
            }
            _ => StepOutcome::Exit(0),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn blocked_writer_gets_epipe_when_last_reader_closes() {
    for engine in [SchedEngine::Lockstep, SchedEngine::EventDriven] {
        let mut m = Machine::new(
            IpcOs::new(),
            MachineConfig {
                cores: 2,
                engine,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(EpipeWriter {
                    phase: 0,
                    wfd: None,
                    tid: 0,
                }),
            )
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0), "{engine:?}");
    }
}

// ---------------------------------------------------------------------------
// Shared-memory rings across fork.
// ---------------------------------------------------------------------------

const MSGS: u32 = 5;

/// Opens both ends of a tiny ring, parks the sealed endpoints in high
/// registers, forks; the parent pushes [`MSGS`] messages (stalling on
/// the 2-slot ring while the child dawdles), the child pops until EOF
/// and exits with the count.
#[derive(Clone)]
struct RingPair {
    phase: u8,
    pf: Option<Fd>,
    cf: Option<Fd>,
    is_child: bool,
    pushed: u32,
    popped: u32,
}
impl RingPair {
    fn push(&self, env: &mut dyn Env) -> StepOutcome {
        StepOutcome::Block(BlockingCall::RingPush {
            fd: self.pf.unwrap(),
            ring: env.reg(12).unwrap(),
            buf: env.reg(0).unwrap(),
            len: 8,
        })
    }
    fn pop(&self, env: &mut dyn Env) -> StepOutcome {
        StepOutcome::Block(BlockingCall::RingPop {
            fd: self.cf.unwrap(),
            ring: env.reg(13).unwrap(),
            buf: env.reg(0).unwrap(),
        })
    }
}
impl Program for RingPair {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                let (pf, pcap) = env.sys_ring_open("pair", 2, 8, true).expect("prod end");
                let (cf, ccap) = env.sys_ring_open("pair", 2, 8, false).expect("cons end");
                assert!(pcap.is_sealed() && ccap.is_sealed());
                env.set_reg(12, pcap).unwrap();
                env.set_reg(13, ccap).unwrap();
                self.pf = Some(pf);
                self.cf = Some(cf);
                StepOutcome::Fork
            }
            Resume::Forked(ForkResult::Child) => {
                self.is_child = true;
                env.sys_close(self.pf.unwrap()).unwrap();
                self.phase = 10;
                // Dawdle so the parent hits the 2-slot ring's Full path.
                StepOutcome::Block(BlockingCall::Sleep { ns: 5e6 })
            }
            Resume::Forked(ForkResult::Parent(_)) => {
                env.sys_close(self.cf.unwrap()).unwrap();
                self.phase = 2;
                self.push(env)
            }
            Resume::Ret(r) => {
                if self.is_child {
                    match (self.phase, r) {
                        (10, _) => {
                            self.phase = 11;
                            self.pop(env)
                        }
                        (11, Ok(8)) => {
                            self.popped += 1;
                            self.pop(env)
                        }
                        (11, Ok(0)) => {
                            env.sys_close(self.cf.unwrap()).unwrap();
                            StepOutcome::Exit(self.popped as i32)
                        }
                        _ => StepOutcome::Exit(-1),
                    }
                } else {
                    match (self.phase, r) {
                        (2, Ok(8)) => {
                            self.pushed += 1;
                            if self.pushed < MSGS {
                                self.push(env)
                            } else {
                                env.sys_close(self.pf.unwrap()).unwrap();
                                self.phase = 3;
                                StepOutcome::Block(BlockingCall::Wait)
                            }
                        }
                        (3, Ok(_)) => StepOutcome::Exit(0),
                        _ => StepOutcome::Exit(-1),
                    }
                }
            }
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn ring_endpoints_survive_fork_and_deliver_eof() {
    let run = |engine: SchedEngine| {
        let mut m = Machine::new(
            IpcOs::new(),
            MachineConfig {
                cores: 2,
                engine,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(RingPair {
                    phase: 0,
                    pf: None,
                    cf: None,
                    is_child: false,
                    pushed: 0,
                    popped: 0,
                }),
            )
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0), "{engine:?}: parent");
        let child = m.fork_log()[0].child;
        assert_eq!(
            m.exit_code(child),
            Some(MSGS as i32),
            "{engine:?}: child popped all messages then saw EOF"
        );
        let c = m.counters();
        assert_eq!(c.ring_msgs, u64::from(MSGS), "{engine:?}");
        // Both ring fds were duplicated across the fork.
        assert_eq!(c.ring_caps_relocated, 2, "{engine:?}");
        assert!(
            c.ring_full_stalls >= 1,
            "{engine:?}: the sleeping child must have forced a Full stall"
        );
        (m.now(), *m.counters())
    };
    let (now_l, ctr_l) = run(SchedEngine::Lockstep);
    let (now_e, ctr_e) = run(SchedEngine::EventDriven);
    assert_eq!(now_l.to_bits(), now_e.to_bits(), "engines agree");
    assert_eq!(ctr_l, ctr_e);
}

/// Non-blocking ring ops in a single process: empty → 0, full → EAGAIN,
/// drained-with-producers → 0, drained-without-producers → EOF sentinel.
#[derive(Clone)]
struct TryOps;
impl Program for TryOps {
    fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
        let (pf, pcap) = env.sys_ring_open("try", 2, 4, true).unwrap();
        let (cf, ccap) = env.sys_ring_open("try", 2, 4, false).unwrap();
        let buf = env.reg(0).unwrap();
        // Empty, producers alive: no data, no EOF.
        assert_eq!(env.sys_ring_try_pop(cf, &ccap, &buf), Ok(0));
        assert_eq!(env.sys_ring_try_push(pf, &pcap, &buf, 4), Ok(4));
        assert_eq!(env.sys_ring_try_push(pf, &pcap, &buf, 4), Ok(4));
        // Two slots occupied: the ring is full.
        assert_eq!(env.sys_ring_try_push(pf, &pcap, &buf, 4), Err(Errno::Again));
        // Geometry is enforced per message.
        assert_eq!(env.sys_ring_try_push(pf, &pcap, &buf, 3), Err(Errno::Inval));
        assert_eq!(env.sys_ring_try_pop(cf, &ccap, &buf), Ok(4));
        assert_eq!(env.sys_ring_try_pop(cf, &ccap, &buf), Ok(4));
        assert_eq!(env.sys_ring_try_pop(cf, &ccap, &buf), Ok(0));
        // Last producer end gone: drained ring now reports EOF.
        env.sys_close(pf).unwrap();
        assert_eq!(env.sys_ring_try_pop(cf, &ccap, &buf), Ok(RING_EOF));
        env.sys_close(cf).unwrap();
        StepOutcome::Exit(0)
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn try_ops_report_full_empty_and_eof() {
    let mut m = Machine::new(IpcOs::new(), MachineConfig::default());
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(TryOps))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert_eq!(m.counters().ring_full_stalls, 1);
}
