//! Machine/scheduler tests against a minimal mock backend, independent of
//! any real kernel: scheduling order, affinity, the big-kernel-lock
//! model, blocking, time limits.

use std::collections::BTreeMap;

use ufork_abi::{
    BlockingCall, Capability, Env, Errno, Fd, ForkResult, ImageSpec, IsolationLevel, Pid, Program,
    ProgramBox, Resume, StepOutcome, SysResult,
};
use ufork_cheri::Perms;
use ufork_exec::{BlockedOn, Ctx, Machine, MachineConfig, MemOs, SchedEngine, MAIN_TID};
use ufork_mem::MemStats;
use ufork_sim::CostModel;

/// A trivially simple backend: every process gets a flat 64 KiB buffer;
/// fork memcpys it. No page tables, no faults — pure machine testing.
struct MockOs {
    cost: CostModel,
    big_lock: bool,
    procs: BTreeMap<Pid, (Vec<u8>, Vec<Option<Capability>>)>,
}

impl MockOs {
    fn new(big_lock: bool) -> MockOs {
        MockOs {
            cost: CostModel::morello(),
            big_lock,
            procs: BTreeMap::new(),
        }
    }
}

const MOCK_LEN: u64 = 64 * 1024;

impl MemOs for MockOs {
    fn cost(&self) -> &CostModel {
        &self.cost
    }
    fn spawn(&mut self, _ctx: &mut Ctx, pid: Pid, _image: &ImageSpec) -> SysResult<()> {
        let mut regs = vec![None; 8];
        regs[0] = Some(Capability::new_root(
            u64::from(pid.0) << 20,
            MOCK_LEN,
            Perms::data(),
        ));
        self.procs.insert(pid, (vec![0; MOCK_LEN as usize], regs));
        Ok(())
    }
    fn fork(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        ctx.kernel(self.cost.fork_fixed_ufork);
        let (mem, mut regs) = self.procs.get(&parent).ok_or(Errno::Inval)?.clone();
        regs[0] = Some(Capability::new_root(
            u64::from(child.0) << 20,
            MOCK_LEN,
            Perms::data(),
        ));
        self.procs.insert(child, (mem, regs));
        Ok(())
    }
    fn destroy(&mut self, _ctx: &mut Ctx, pid: Pid) {
        self.procs.remove(&pid);
    }
    fn load(&mut self, _c: &mut Ctx, pid: Pid, cap: &Capability, buf: &mut [u8]) -> SysResult<()> {
        let (mem, _) = self.procs.get(&pid).ok_or(Errno::Inval)?;
        let off = (cap.addr() & 0xf_ffff) as usize;
        buf.copy_from_slice(&mem[off..off + buf.len()]);
        Ok(())
    }
    fn store(&mut self, _c: &mut Ctx, pid: Pid, cap: &Capability, data: &[u8]) -> SysResult<()> {
        let (mem, _) = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let off = (cap.addr() & 0xf_ffff) as usize;
        mem[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
    fn load_cap(
        &mut self,
        _c: &mut Ctx,
        _p: Pid,
        _cap: &Capability,
    ) -> SysResult<Option<Capability>> {
        Ok(None)
    }
    fn store_cap(
        &mut self,
        _c: &mut Ctx,
        _p: Pid,
        _cap: &Capability,
        _v: &Capability,
    ) -> SysResult<()> {
        Ok(())
    }
    fn malloc(&mut self, _c: &mut Ctx, pid: Pid, _len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            4096,
            Perms::data(),
        ))
    }
    fn mfree(&mut self, _c: &mut Ctx, _p: Pid, _cap: &Capability) -> SysResult<()> {
        Ok(())
    }
    fn reg(&self, pid: Pid, idx: usize) -> SysResult<Capability> {
        self.procs
            .get(&pid)
            .and_then(|(_, r)| r.get(idx).copied().flatten())
            .ok_or(Errno::Inval)
    }
    fn set_reg(&mut self, pid: Pid, idx: usize, cap: Capability) -> SysResult<()> {
        let (_, regs) = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        *regs.get_mut(idx).ok_or(Errno::Inval)? = Some(cap);
        Ok(())
    }
    fn shm_open(&mut self, _c: &mut Ctx, pid: Pid, _n: &str, len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            len,
            Perms::data(),
        ))
    }
    fn mmap_anon(&mut self, _c: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            len,
            Perms::data(),
        ))
    }
    fn syscall_entry_cost(&self) -> f64 {
        100.0
    }
    fn syscall_is_trap(&self) -> bool {
        false
    }
    fn ctx_switch_cost(&self, _f: Pid, _t: Pid) -> f64 {
        1000.0
    }
    fn big_kernel_lock(&self) -> bool {
        self.big_lock
    }
    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Fault
    }
    fn copyio_cost_per_byte(&self) -> f64 {
        0.0
    }
    fn mem_stats(&self, _pid: Pid) -> MemStats {
        MemStats::default()
    }
    fn allocated_frames(&self) -> u32 {
        self.procs.len() as u32 * 16
    }
    fn peak_frames(&self) -> u32 {
        self.allocated_frames()
    }
    fn audit_isolation(&self, _pid: Pid) -> usize {
        0
    }
}

/// Forks N burners then waits for all.
#[derive(Clone)]
struct FanOut {
    n: u32,
    forked: u32,
    burn: u64,
    is_child: bool,
}
impl Program for FanOut {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                self.forked = 1;
                StepOutcome::Fork
            }
            Resume::Forked(ForkResult::Child) => {
                self.is_child = true;
                env.cpu_ops(self.burn);
                StepOutcome::Exit(0)
            }
            Resume::Forked(ForkResult::Parent(_)) => {
                if self.forked < self.n {
                    self.forked += 1;
                    StepOutcome::Fork
                } else {
                    StepOutcome::Block(BlockingCall::Wait)
                }
            }
            Resume::Ret(Ok(_)) => {
                self.forked -= 1;
                if self.forked > 0 {
                    StepOutcome::Block(BlockingCall::Wait)
                } else {
                    StepOutcome::Exit(0)
                }
            }
            Resume::Ret(Err(_)) => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn fanout(n: u32, burn: u64) -> Box<FanOut> {
    Box::new(FanOut {
        n,
        forked: 0,
        burn,
        is_child: false,
    })
}

#[test]
fn user_work_scales_across_cores() {
    // 4 children × 1M ops (0.8 ms each): on 1 core ≈ 3.2 ms of child
    // work serialized; on 4 cores ≈ 0.8 ms. No big lock.
    let run = |cores: usize| {
        let mut m = Machine::new(
            MockOs::new(false),
            MachineConfig {
                cores,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(&ImageSpec::hello_world(), fanout(4, 1_000_000))
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        m.now()
    };
    let t1 = run(1);
    let t4 = run(5); // 4 workers + the parent's core
    assert!(
        t1 > 2.0 * t4,
        "multicore must speed up independent user work: {t1} vs {t4}"
    );
}

#[test]
fn big_kernel_lock_serializes_kernel_portions() {
    // With huge fork costs (kernel time), the lock should not matter for
    // a single forker; compare pure-user scaling against both models.
    let run = |big_lock: bool| {
        let mut m = Machine::new(
            MockOs::new(big_lock),
            MachineConfig {
                cores: 4,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(&ImageSpec::hello_world(), fanout(8, 500_000))
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        m.now()
    };
    let unlocked = run(false);
    let locked = run(true);
    // The kernel work here (forks from one parent) is already serial, so
    // the lock costs little — but must never make things FASTER.
    assert!(locked >= unlocked * 0.99, "{locked} vs {unlocked}");
    assert!(locked < unlocked * 1.5, "lock overhead must stay bounded");
}

#[test]
fn affinity_restricts_cores() {
    // Pin the parent to core 0 and children to core 1: total time must be
    // (roughly) the serial sum of child work even on an 8-core machine.
    let mut m = Machine::new(
        MockOs::new(false),
        MachineConfig {
            cores: 8,
            child_affinity: Some(vec![1]),
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(&ImageSpec::hello_world(), fanout(4, 1_000_000))
        .unwrap();
    m.set_affinity(pid, vec![0]);
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    let serial_child_work = 4.0 * 1_000_000.0 * 0.8; // cpu_op = 0.8ns
    assert!(
        m.now() >= serial_child_work,
        "children pinned to one core cannot overlap: {} < {serial_child_work}",
        m.now()
    );
}

#[test]
fn sleep_advances_simulated_time() {
    #[derive(Clone)]
    struct Sleeper;
    impl Program for Sleeper {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Block(BlockingCall::Sleep { ns: 5e6 }),
                _ => StepOutcome::Exit(0),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Sleeper))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert!(m.now() >= 5e6);
    assert!(m.now() < 6e6);
}

#[test]
fn time_limit_stops_scheduling() {
    #[derive(Clone)]
    struct Forever;
    impl Program for Forever {
        fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
            env.cpu_ops(1000);
            StepOutcome::Block(BlockingCall::Yield)
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(
        MockOs::new(false),
        MachineConfig {
            time_limit: Some(1e6),
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Forever))
        .unwrap();
    m.run(); // must terminate despite the infinite program
    assert!(!m.is_finished(pid), "program never exited");
    assert!(m.now() >= 1e6, "ran up to the limit");
    assert!(m.now() < 1.2e6, "but not much past it");
}

#[test]
fn wait_with_no_children_errors() {
    #[derive(Clone)]
    struct LoneWaiter;
    impl Program for LoneWaiter {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Block(BlockingCall::Wait),
                Resume::Ret(Err(Errno::Child)) => StepOutcome::Exit(0),
                _ => StepOutcome::Exit(1),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(LoneWaiter))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "ECHILD delivered");
}

#[test]
fn orphans_keep_running_after_parent_exit() {
    #[derive(Clone)]
    struct Abandoner {
        is_child: bool,
    }
    impl Program for Abandoner {
        fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Fork,
                Resume::Forked(ForkResult::Child) => {
                    self.is_child = true;
                    // Outlive the parent.
                    StepOutcome::Block(BlockingCall::Sleep { ns: 1e6 })
                }
                Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Exit(0), // no wait
                Resume::Ret(_) => {
                    env.cpu_ops(10);
                    StepOutcome::Exit(9)
                }
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Abandoner { is_child: false }),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // The orphan finished with its own code.
    let orphan = m
        .exit_log()
        .iter()
        .find(|e| e.pid != pid)
        .expect("orphan exited");
    assert_eq!(orphan.code, 9);
}

// ---------------------------------------------------------------------------
// Event-driven scheduler: equivalence, priorities, slices, blocked states.
// ---------------------------------------------------------------------------

/// Both engines over the same workload must produce bit-identical
/// schedules (the full differential suite lives in
/// `tests/sched_differential.rs`; this is the mock-backend smoke).
#[test]
fn engines_agree_on_fanout_schedule() {
    for big_lock in [false, true] {
        let run = |engine: SchedEngine| {
            let mut m = Machine::new(
                MockOs::new(big_lock),
                MachineConfig {
                    cores: 3,
                    engine,
                    ..MachineConfig::default()
                },
            );
            let pid = m
                .spawn(&ImageSpec::hello_world(), fanout(6, 100_000))
                .unwrap();
            m.run();
            assert_eq!(m.exit_code(pid), Some(0));
            (
                m.now(),
                m.fork_log().to_vec(),
                m.exit_log().to_vec(),
                *m.counters(),
            )
        };
        let (now_l, forks_l, exits_l, ctr_l) = run(SchedEngine::Lockstep);
        let (now_e, forks_e, exits_e, ctr_e) = run(SchedEngine::EventDriven);
        assert_eq!(now_l.to_bits(), now_e.to_bits(), "big_lock={big_lock}");
        assert_eq!(ctr_l, ctr_e);
        assert_eq!(forks_l.len(), forks_e.len());
        for (a, b) in forks_l.iter().zip(&forks_e) {
            assert_eq!((a.parent, a.child), (b.parent, b.child));
            assert_eq!(a.at.to_bits(), b.at.to_bits());
            assert_eq!(a.latency_ns.to_bits(), b.latency_ns.to_bits());
        }
        assert_eq!(exits_l.len(), exits_e.len());
        for (a, b) in exits_l.iter().zip(&exits_e) {
            assert_eq!((a.pid, a.code), (b.pid, b.code));
            assert_eq!(a.at.to_bits(), b.at.to_bits());
        }
    }
}

/// A one-step program whose exit order reveals who was scheduled first.
#[derive(Clone)]
struct Quick;
impl Program for Quick {
    fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
        env.cpu_ops(100);
        StepOutcome::Exit(0)
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn priority_breaks_ties_at_equal_ready_time() {
    // Two processes both ready at t=0 on one core. With equal priority
    // the pid tie-break runs pid 1 first; giving pid 2 a better (lower)
    // priority flips the order. Priority never preempts earlier work —
    // it only breaks exact ties.
    let run = |prios: &[(u32, u8)]| {
        let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
        let a = m.spawn(&ImageSpec::hello_world(), Box::new(Quick)).unwrap();
        let b = m.spawn(&ImageSpec::hello_world(), Box::new(Quick)).unwrap();
        for &(pid, prio) in prios {
            m.set_priority(Pid(pid), prio);
        }
        m.run();
        assert!(m.is_finished(a) && m.is_finished(b));
        m.exit_log()[0].pid
    };
    assert_eq!(run(&[]), Pid(1), "default: ascending pid at equal time");
    assert_eq!(run(&[(2, 10)]), Pid(2), "lower prio value runs first");
    assert_eq!(run(&[(1, 10), (2, 10)]), Pid(1), "equal prio: pid again");
}

/// Reader thread: parks on an empty pipe, records when its read returned.
#[derive(Clone)]
struct TieReader {
    rfd: Fd,
    at: Option<f64>,
}
impl Program for TieReader {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                let buf = env.reg(0).expect("root capability");
                StepOutcome::Block(BlockingCall::Read {
                    fd: self.rfd,
                    buf,
                    len: 4,
                })
            }
            Resume::Ret(Ok(_)) => {
                self.at = Some(env.now());
                StepOutcome::Exit(5)
            }
            _ => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Main thread: spawns the reader, lets it park, then writes the pipe.
/// The write's wake lands at the write step's *end* — exactly when this
/// thread is requeued — manufacturing a same-instant tie between the two.
#[derive(Clone)]
struct TieWriter {
    wfd: Option<Fd>,
    reader_tid: u64,
    at: Option<f64>,
    phase: u8,
}
impl Program for TieWriter {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match self.phase {
            0 => {
                let (r, w) = env.sys_pipe().expect("pipe");
                self.wfd = Some(w);
                self.phase = 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(TieReader { rfd: r, at: None })),
                })
            }
            1 => {
                let Resume::Ret(Ok(tid)) = input else {
                    return StepOutcome::Exit(1);
                };
                self.reader_tid = tid;
                self.phase = 2;
                // Let the reader run and park on the empty pipe.
                StepOutcome::Block(BlockingCall::Sleep { ns: 1e6 })
            }
            2 => {
                let buf = env.reg(0).expect("root capability");
                env.sys_write(self.wfd.unwrap(), &buf, 4).expect("write");
                self.phase = 3;
                StepOutcome::Block(BlockingCall::Yield)
            }
            3 => {
                self.at = Some(env.now());
                self.phase = 4;
                StepOutcome::Block(BlockingCall::JoinThread {
                    tid: self.reader_tid,
                })
            }
            _ => StepOutcome::Exit(0),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn time_slice_demotes_overrunning_thread_behind_ties() {
    // One core. The writer's pipe write wakes the reader at the write
    // step's end — the same instant the writer is requeued. Without a
    // slice the writer (tid 0) wins the tie; with a zero-length slice
    // every step overruns, so the writer is demoted and the woken reader
    // runs first. Either way the run completes identically.
    let run = |slice_ns: Option<f64>| {
        let mut m = Machine::new(
            MockOs::new(false),
            MachineConfig {
                slice_ns,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(TieWriter {
                    wfd: None,
                    reader_tid: 0,
                    at: None,
                    phase: 0,
                }),
            )
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        let writer_at = m.program::<TieWriter>(pid).unwrap().at.expect("writer ran");
        let reader_at = m
            .thread_program::<TieReader>(pid, 1)
            .unwrap()
            .at
            .expect("reader ran");
        (writer_at, reader_at)
    };
    let (w, r) = run(None);
    assert!(w < r, "no slice: writer wins the tie ({w} vs {r})");
    let (w, r) = run(Some(0.0));
    assert!(
        r < w,
        "zero slice: writer demoted, reader first ({r} vs {w})"
    );
}

#[test]
fn blocked_states_are_observable() {
    // Parent forks then waits; the child burns for a while. Step until
    // the parent parks and check what it reports being blocked on.
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(&ImageSpec::hello_world(), fanout(1, 1_000_000))
        .unwrap();
    while m.blocked_on(pid, MAIN_TID).is_none() {
        assert!(m.step(), "parent must park before the machine idles");
    }
    assert_eq!(m.blocked_on(pid, MAIN_TID), Some(BlockedOn::Wait));
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert_eq!(m.blocked_on(pid, MAIN_TID), None, "cleared on wake");
}

#[test]
fn cross_core_times_are_consistent() {
    // Forked children on other cores must never run before their fork
    // completed.
    let mut m = Machine::new(
        MockOs::new(false),
        MachineConfig {
            cores: 3,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(&ImageSpec::hello_world(), fanout(6, 100_000))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    for f in m.fork_log() {
        let exit = m
            .exit_log()
            .iter()
            .find(|e| e.pid == f.child)
            .expect("child exited");
        assert!(
            exit.at >= f.at + 100_000.0 * 0.8,
            "child {:?} exited at {} before fork-end {} plus its work",
            f.child,
            exit.at,
            f.at
        );
    }
}
