//! Machine/scheduler tests against a minimal mock backend, independent of
//! any real kernel: scheduling order, affinity, the big-kernel-lock
//! model, blocking, time limits.

use std::collections::BTreeMap;

use ufork_abi::{
    BlockingCall, Capability, Env, Errno, ForkResult, ImageSpec, IsolationLevel, Pid, Program,
    Resume, StepOutcome, SysResult,
};
use ufork_cheri::Perms;
use ufork_exec::{Ctx, Machine, MachineConfig, MemOs};
use ufork_mem::MemStats;
use ufork_sim::CostModel;

/// A trivially simple backend: every process gets a flat 64 KiB buffer;
/// fork memcpys it. No page tables, no faults — pure machine testing.
struct MockOs {
    cost: CostModel,
    big_lock: bool,
    procs: BTreeMap<Pid, (Vec<u8>, Vec<Option<Capability>>)>,
}

impl MockOs {
    fn new(big_lock: bool) -> MockOs {
        MockOs {
            cost: CostModel::morello(),
            big_lock,
            procs: BTreeMap::new(),
        }
    }
}

const MOCK_LEN: u64 = 64 * 1024;

impl MemOs for MockOs {
    fn cost(&self) -> &CostModel {
        &self.cost
    }
    fn spawn(&mut self, _ctx: &mut Ctx, pid: Pid, _image: &ImageSpec) -> SysResult<()> {
        let mut regs = vec![None; 8];
        regs[0] = Some(Capability::new_root(
            u64::from(pid.0) << 20,
            MOCK_LEN,
            Perms::data(),
        ));
        self.procs.insert(pid, (vec![0; MOCK_LEN as usize], regs));
        Ok(())
    }
    fn fork(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        ctx.kernel(self.cost.fork_fixed_ufork);
        let (mem, mut regs) = self.procs.get(&parent).ok_or(Errno::Inval)?.clone();
        regs[0] = Some(Capability::new_root(
            u64::from(child.0) << 20,
            MOCK_LEN,
            Perms::data(),
        ));
        self.procs.insert(child, (mem, regs));
        Ok(())
    }
    fn destroy(&mut self, _ctx: &mut Ctx, pid: Pid) {
        self.procs.remove(&pid);
    }
    fn load(&mut self, _c: &mut Ctx, pid: Pid, cap: &Capability, buf: &mut [u8]) -> SysResult<()> {
        let (mem, _) = self.procs.get(&pid).ok_or(Errno::Inval)?;
        let off = (cap.addr() & 0xf_ffff) as usize;
        buf.copy_from_slice(&mem[off..off + buf.len()]);
        Ok(())
    }
    fn store(&mut self, _c: &mut Ctx, pid: Pid, cap: &Capability, data: &[u8]) -> SysResult<()> {
        let (mem, _) = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let off = (cap.addr() & 0xf_ffff) as usize;
        mem[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
    fn load_cap(
        &mut self,
        _c: &mut Ctx,
        _p: Pid,
        _cap: &Capability,
    ) -> SysResult<Option<Capability>> {
        Ok(None)
    }
    fn store_cap(
        &mut self,
        _c: &mut Ctx,
        _p: Pid,
        _cap: &Capability,
        _v: &Capability,
    ) -> SysResult<()> {
        Ok(())
    }
    fn malloc(&mut self, _c: &mut Ctx, pid: Pid, _len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            4096,
            Perms::data(),
        ))
    }
    fn mfree(&mut self, _c: &mut Ctx, _p: Pid, _cap: &Capability) -> SysResult<()> {
        Ok(())
    }
    fn reg(&self, pid: Pid, idx: usize) -> SysResult<Capability> {
        self.procs
            .get(&pid)
            .and_then(|(_, r)| r.get(idx).copied().flatten())
            .ok_or(Errno::Inval)
    }
    fn set_reg(&mut self, pid: Pid, idx: usize, cap: Capability) -> SysResult<()> {
        let (_, regs) = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        *regs.get_mut(idx).ok_or(Errno::Inval)? = Some(cap);
        Ok(())
    }
    fn shm_open(&mut self, _c: &mut Ctx, pid: Pid, _n: &str, len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            len,
            Perms::data(),
        ))
    }
    fn mmap_anon(&mut self, _c: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        Ok(Capability::new_root(
            u64::from(pid.0) << 20,
            len,
            Perms::data(),
        ))
    }
    fn syscall_entry_cost(&self) -> f64 {
        100.0
    }
    fn syscall_is_trap(&self) -> bool {
        false
    }
    fn ctx_switch_cost(&self, _f: Pid, _t: Pid) -> f64 {
        1000.0
    }
    fn big_kernel_lock(&self) -> bool {
        self.big_lock
    }
    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Fault
    }
    fn copyio_cost_per_byte(&self) -> f64 {
        0.0
    }
    fn mem_stats(&self, _pid: Pid) -> MemStats {
        MemStats::default()
    }
    fn allocated_frames(&self) -> u32 {
        self.procs.len() as u32 * 16
    }
    fn peak_frames(&self) -> u32 {
        self.allocated_frames()
    }
    fn audit_isolation(&self, _pid: Pid) -> usize {
        0
    }
}

/// Forks N burners then waits for all.
#[derive(Clone)]
struct FanOut {
    n: u32,
    forked: u32,
    burn: u64,
    is_child: bool,
}
impl Program for FanOut {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                self.forked = 1;
                StepOutcome::Fork
            }
            Resume::Forked(ForkResult::Child) => {
                self.is_child = true;
                env.cpu_ops(self.burn);
                StepOutcome::Exit(0)
            }
            Resume::Forked(ForkResult::Parent(_)) => {
                if self.forked < self.n {
                    self.forked += 1;
                    StepOutcome::Fork
                } else {
                    StepOutcome::Block(BlockingCall::Wait)
                }
            }
            Resume::Ret(Ok(_)) => {
                self.forked -= 1;
                if self.forked > 0 {
                    StepOutcome::Block(BlockingCall::Wait)
                } else {
                    StepOutcome::Exit(0)
                }
            }
            Resume::Ret(Err(_)) => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn fanout(n: u32, burn: u64) -> Box<FanOut> {
    Box::new(FanOut {
        n,
        forked: 0,
        burn,
        is_child: false,
    })
}

#[test]
fn user_work_scales_across_cores() {
    // 4 children × 1M ops (0.8 ms each): on 1 core ≈ 3.2 ms of child
    // work serialized; on 4 cores ≈ 0.8 ms. No big lock.
    let run = |cores: usize| {
        let mut m = Machine::new(
            MockOs::new(false),
            MachineConfig {
                cores,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(&ImageSpec::hello_world(), fanout(4, 1_000_000))
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        m.now()
    };
    let t1 = run(1);
    let t4 = run(5); // 4 workers + the parent's core
    assert!(
        t1 > 2.0 * t4,
        "multicore must speed up independent user work: {t1} vs {t4}"
    );
}

#[test]
fn big_kernel_lock_serializes_kernel_portions() {
    // With huge fork costs (kernel time), the lock should not matter for
    // a single forker; compare pure-user scaling against both models.
    let run = |big_lock: bool| {
        let mut m = Machine::new(
            MockOs::new(big_lock),
            MachineConfig {
                cores: 4,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(&ImageSpec::hello_world(), fanout(8, 500_000))
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        m.now()
    };
    let unlocked = run(false);
    let locked = run(true);
    // The kernel work here (forks from one parent) is already serial, so
    // the lock costs little — but must never make things FASTER.
    assert!(locked >= unlocked * 0.99, "{locked} vs {unlocked}");
    assert!(locked < unlocked * 1.5, "lock overhead must stay bounded");
}

#[test]
fn affinity_restricts_cores() {
    // Pin the parent to core 0 and children to core 1: total time must be
    // (roughly) the serial sum of child work even on an 8-core machine.
    let mut m = Machine::new(
        MockOs::new(false),
        MachineConfig {
            cores: 8,
            child_affinity: Some(vec![1]),
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(&ImageSpec::hello_world(), fanout(4, 1_000_000))
        .unwrap();
    m.set_affinity(pid, vec![0]);
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    let serial_child_work = 4.0 * 1_000_000.0 * 0.8; // cpu_op = 0.8ns
    assert!(
        m.now() >= serial_child_work,
        "children pinned to one core cannot overlap: {} < {serial_child_work}",
        m.now()
    );
}

#[test]
fn sleep_advances_simulated_time() {
    #[derive(Clone)]
    struct Sleeper;
    impl Program for Sleeper {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Block(BlockingCall::Sleep { ns: 5e6 }),
                _ => StepOutcome::Exit(0),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Sleeper))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert!(m.now() >= 5e6);
    assert!(m.now() < 6e6);
}

#[test]
fn time_limit_stops_scheduling() {
    #[derive(Clone)]
    struct Forever;
    impl Program for Forever {
        fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
            env.cpu_ops(1000);
            StepOutcome::Block(BlockingCall::Yield)
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(
        MockOs::new(false),
        MachineConfig {
            time_limit: Some(1e6),
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Forever))
        .unwrap();
    m.run(); // must terminate despite the infinite program
    assert!(!m.is_finished(pid), "program never exited");
    assert!(m.now() >= 1e6, "ran up to the limit");
    assert!(m.now() < 1.2e6, "but not much past it");
}

#[test]
fn wait_with_no_children_errors() {
    #[derive(Clone)]
    struct LoneWaiter;
    impl Program for LoneWaiter {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Block(BlockingCall::Wait),
                Resume::Ret(Err(Errno::Child)) => StepOutcome::Exit(0),
                _ => StepOutcome::Exit(1),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(LoneWaiter))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "ECHILD delivered");
}

#[test]
fn orphans_keep_running_after_parent_exit() {
    #[derive(Clone)]
    struct Abandoner {
        is_child: bool,
    }
    impl Program for Abandoner {
        fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Fork,
                Resume::Forked(ForkResult::Child) => {
                    self.is_child = true;
                    // Outlive the parent.
                    StepOutcome::Block(BlockingCall::Sleep { ns: 1e6 })
                }
                Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Exit(0), // no wait
                Resume::Ret(_) => {
                    env.cpu_ops(10);
                    StepOutcome::Exit(9)
                }
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut m = Machine::new(MockOs::new(false), MachineConfig::default());
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Abandoner { is_child: false }),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // The orphan finished with its own code.
    let orphan = m
        .exit_log()
        .iter()
        .find(|e| e.pid != pid)
        .expect("orphan exited");
    assert_eq!(orphan.code, 9);
}

#[test]
fn cross_core_times_are_consistent() {
    // Forked children on other cores must never run before their fork
    // completed.
    let mut m = Machine::new(
        MockOs::new(false),
        MachineConfig {
            cores: 3,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(&ImageSpec::hello_world(), fanout(6, 100_000))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    for f in m.fork_log() {
        let exit = m
            .exit_log()
            .iter()
            .find(|e| e.pid == f.child)
            .expect("child exited");
        assert!(
            exit.at >= f.at + 100_000.0 * 0.8,
            "child {:?} exited at {} before fork-end {} plus its work",
            f.child,
            exit.at,
            f.at
        );
    }
}
