//! The discrete-event machine: scheduler, processes, threads, and the
//! [`Env`] glue.
//!
//! Processes contain one or more **threads** (paper §3.4: "each μprocess
//! may have many threads"); threads share the process's memory, file
//! descriptors, and register file, and are scheduled independently.
//! `fork` duplicates only the calling thread, as POSIX specifies.
//!
//! Two scheduling engines share everything after thread selection (see
//! [`SchedEngine`]): the original lockstep linear scan, and the default
//! event-driven run queue that scales to thousands of live μprocesses.
//! With default priorities and no time slice, both produce bit-identical
//! schedules — enforced by `tests/sched_differential.rs`.

use std::collections::{BTreeMap, BTreeSet};

use ufork_abi::{
    BlockingCall, Capability, Env, Errno, Fd, ForkResult, ImageSpec, Pid, Program, Resume,
    StepOutcome, SysResult, RING_EOF,
};
use ufork_cheri::OType;
use ufork_sim::OpCounters;

use crate::ctx::Ctx;
use crate::memos::{charge_syscall, MemOs};
use crate::ring::{self, RingPop as RawPop, RingPush as RawPush};
use crate::sched::{BlockedOn, Cores, QEntry, RunQueue, SchedEngine, TimeKey, DEFAULT_PRIORITY};
use crate::vfs::{ConnRead, ConnTemplate, FdKind, FdTable, PipeRead, RingMeta, Vfs, WakeEvent};

/// Machine-wide configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of simulated cores.
    pub cores: usize,
    /// Cores newly forked children may run on (`None` = inherit the
    /// parent's affinity). The FaaS experiment pins the coordinator to
    /// core 0 and fans children out to the remaining cores (paper §5.1).
    pub child_affinity: Option<Vec<usize>>,
    /// Stop scheduling steps that would start at or after this simulated
    /// time (ns).
    pub time_limit: Option<f64>,
    /// Scheduling engine. [`SchedEngine::EventDriven`] unless a test
    /// explicitly asks for the lockstep reference.
    pub engine: SchedEngine,
    /// Time-slice length (ns), event engine only: a step that runs longer
    /// is requeued *behind* other threads ready at the same instant
    /// (round-robin at equal timestamps — in a discrete-event machine a
    /// slice cannot preempt mid-step). `None` disables slicing, which
    /// keeps the schedule identical to the lockstep engine.
    pub slice_ns: Option<f64>,
    /// Enable the OOM last resort: when a fork still fails with `NoMem`
    /// after the backend's own degrade ladder and reclaim retries, the
    /// machine deterministically kills victim μprocesses (largest
    /// resident set, then deepest fork ancestry, then youngest pid) and
    /// retries the fork — a storm degrades to fewer children instead of
    /// failing forks. Off by default: existing schedules stay
    /// bit-identical, and workloads that want `ENOMEM` surfaced keep it.
    pub oom_kill: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            cores: 1,
            child_affinity: None,
            time_limit: None,
            engine: SchedEngine::EventDriven,
            slice_ns: None,
            oom_kill: false,
        }
    }
}

/// A completed fork, with its measured latency.
#[derive(Clone, Copy, Debug)]
pub struct ForkEvent {
    /// Forking process.
    pub parent: Pid,
    /// New process.
    pub child: Pid,
    /// Simulated time at which the fork call completed.
    pub at: f64,
    /// Latency of the fork call itself (ns).
    pub latency_ns: f64,
}

/// A pipelined fork's background-copy window, closed.
#[derive(Clone, Copy, Debug)]
pub struct PipelineEvent {
    /// The child whose memory was streamed in behind the fork.
    pub child: Pid,
    /// When the fork committed (the child was already runnable).
    pub committed_at: f64,
    /// When the last background page landed: `done_at - committed_at`
    /// is the fork's time-to-copy-complete.
    pub done_at: f64,
    /// Pages the window covered at commit time.
    pub pages: u64,
}

/// The background copy engine of one committed pipelined fork: a
/// machine-level μtask that streams the child's deferred pages in, one
/// chunk per scheduling event. Both engines treat its next firing as an
/// ordinary ready time, so copy progress interleaves deterministically
/// with thread execution — and a child fault can still jump the queue
/// in between events (the engine just finds fewer chunks left).
#[derive(Clone, Copy, Debug)]
struct CopyEngine {
    /// When the next chunk may start.
    next_at: f64,
    /// When the fork committed (for time-to-copy-complete).
    committed_at: f64,
    /// Window size at commit, in pages.
    pages: u64,
    /// Consecutive failed firings (memory pressure); the engine retires
    /// after too many, leaving the window to demand faults.
    fails: u32,
}

/// The background reclaim daemon's scheduling state: a machine-level
/// kernel μtask, armed whenever the backend reports pending reclaim work
/// ([`MemOs::reclaim_pending`]) and fired like the copy engines — as an
/// ordinary ready entity in both scheduling engines, so daemon progress
/// interleaves deterministically with thread execution. Each firing
/// scrubs one bounded batch of recycled frames into the clean-frame
/// magazines on background simulated time, keeping the zeroing cost off
/// the fork/fault hot path.
#[derive(Clone, Copy, Debug)]
struct ReclaimEngine {
    /// When the next pass may start.
    next_at: f64,
    /// Consecutive failed firings (injected aborts); the daemon retires
    /// after too many and re-arms on the next memory-state change.
    fails: u32,
}

/// One OOM kill performed by the fork path's last resort
/// (`MachineConfig::oom_kill`).
#[derive(Clone, Copy, Debug)]
pub struct OomEvent {
    /// The process killed.
    pub victim: Pid,
    /// The process whose failing fork triggered the kill.
    pub requester: Pid,
    /// Simulated kill time.
    pub at: f64,
    /// Resident pages the victim held when selected (the dominant
    /// badness input).
    pub resident_pages: u64,
}

/// A process exit.
#[derive(Clone, Copy, Debug)]
pub struct ExitEvent {
    /// Exiting process.
    pub pid: Pid,
    /// Simulated exit time.
    pub at: f64,
    /// Exit code.
    pub code: i32,
}

/// The main thread's id in every process.
pub const MAIN_TID: u32 = 0;

#[derive(Debug)]
enum ThreadState {
    /// Runnable no earlier than `at`.
    Ready { at: f64 },
    /// Blocked with no known wake time; woken by events.
    Blocked,
    /// Finished.
    Dead,
}

struct Thread {
    program: Option<Box<dyn Program>>,
    state: ThreadState,
    resume_with: Resume,
    /// A blocking call to (re)try when next scheduled.
    pending: Option<BlockingCall>,
    /// What the thread is parked on while `Blocked`.
    blocked_on: Option<BlockedOn>,
    /// Ready-generation: bumped on every transition into (or re-keying
    /// of) the ready state. A run-queue entry is live iff its `gen`
    /// matches — the lazy-deletion validity check.
    gen: u64,
    /// Exit code + time, for `JoinThread`.
    exited: Option<(i32, f64)>,
}

impl Thread {
    fn new(program: Box<dyn Program>, resume_with: Resume, at: f64) -> Thread {
        Thread {
            program: Some(program),
            state: ThreadState::Ready { at },
            resume_with,
            pending: None,
            blocked_on: None,
            gen: 0,
            exited: None,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProcLife {
    Alive,
    /// Exited; retained for `wait`.
    Zombie,
    /// Fully reaped.
    Dead,
}

struct Proc {
    parent: Option<Pid>,
    life: ProcLife,
    threads: BTreeMap<u32, Thread>,
    next_tid: u32,
    fds: FdTable,
    children: BTreeSet<Pid>,
    /// Exited children awaiting `wait`, keyed by (exit time, arrival
    /// order): the first entry is always the earliest-exiting zombie, so
    /// reaping is O(log z) instead of a scan — a 10k-storm parent reaps
    /// 10k times.
    zombies: BTreeMap<(TimeKey, u64), (Pid, i32, f64)>,
    zombie_seq: u64,
    affinity: Option<Vec<usize>>,
    /// Scheduling priority (ties in ready time only; see
    /// [`Machine::set_priority`]).
    prio: u8,
    exit_code: Option<i32>,
}

impl Proc {
    fn main_thread(
        program: Box<dyn Program>,
        parent: Option<Pid>,
        fds: FdTable,
        at: f64,
        resume_with: Resume,
        affinity: Option<Vec<usize>>,
        prio: u8,
    ) -> Proc {
        let mut threads = BTreeMap::new();
        threads.insert(MAIN_TID, Thread::new(program, resume_with, at));
        Proc {
            parent,
            life: ProcLife::Alive,
            threads,
            next_tid: MAIN_TID + 1,
            fds,
            children: BTreeSet::new(),
            zombies: BTreeMap::new(),
            zombie_seq: 0,
            affinity,
            prio,
            exit_code: None,
        }
    }
}

/// The simulated machine: one [`MemOs`] backend plus the shared executive.
pub struct Machine<O: MemOs> {
    /// The OS memory/process backend under test.
    pub os: O,
    vfs: Vfs,
    procs: BTreeMap<Pid, Proc>,
    cores: Cores,
    /// Busy intervals of the big kernel lock (start, end), kept pruned.
    lock_busy: Vec<(f64, f64)>,
    next_pid: u32,
    counters: OpCounters,
    config: MachineConfig,
    fork_log: Vec<ForkEvent>,
    exit_log: Vec<ExitEvent>,
    pipeline_log: Vec<PipelineEvent>,
    /// Live background copy engines, one per pipelined-fork child with
    /// an open window.
    copy_engines: BTreeMap<Pid, CopyEngine>,
    /// The background reclaim daemon, armed while the backend has
    /// pending reclaim work.
    reclaim_engine: Option<ReclaimEngine>,
    oom_log: Vec<OomEvent>,
    runq: RunQueue,
    /// Threads parked on pipe `id` — readers on empty *and* writers on
    /// full (event engine): wakeups touch only the affected pipe's
    /// waiters, not every thread.
    pipe_waiters: BTreeMap<usize, Vec<(Pid, u32)>>,
    /// Threads parked reading connection `id` (event engine).
    conn_waiters: BTreeMap<usize, Vec<(Pid, u32)>>,
    /// Threads parked on ring `id` — producers on full and consumers on
    /// empty (event engine).
    ring_waiters: BTreeMap<usize, Vec<(Pid, u32)>>,
}

impl<O: MemOs> Machine<O> {
    /// Creates a machine over the given backend.
    pub fn new(os: O, config: MachineConfig) -> Machine<O> {
        let runq = RunQueue::new(config.engine == SchedEngine::EventDriven);
        Machine {
            os,
            vfs: Vfs::new(),
            procs: BTreeMap::new(),
            cores: Cores::new(config.cores),
            lock_busy: Vec::new(),
            next_pid: 1,
            counters: OpCounters::default(),
            config,
            fork_log: Vec::new(),
            exit_log: Vec::new(),
            pipeline_log: Vec::new(),
            copy_engines: BTreeMap::new(),
            reclaim_engine: None,
            oom_log: Vec::new(),
            runq,
            pipe_waiters: BTreeMap::new(),
            conn_waiters: BTreeMap::new(),
            ring_waiters: BTreeMap::new(),
        }
    }

    // ---- setup -----------------------------------------------------------

    /// Spawns an initial process from an image and program.
    pub fn spawn(&mut self, image: &ImageSpec, program: Box<dyn Program>) -> SysResult<Pid> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut ctx = Ctx::new();
        self.os.spawn(&mut ctx, pid, image)?;
        self.counters.merge(&ctx.counters);
        self.procs.insert(
            pid,
            Proc::main_thread(
                program,
                None,
                FdTable::new(),
                0.0,
                Resume::Start,
                None,
                DEFAULT_PRIORITY,
            ),
        );
        self.make_ready(pid, MAIN_TID, 0.0);
        self.maybe_arm_reclaim(0.0);
        Ok(pid)
    }

    /// Pins a process (all its threads) to a set of cores.
    pub fn set_affinity(&mut self, pid: Pid, cores: Vec<usize>) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.affinity = Some(cores);
        }
    }

    /// Sets a process's scheduling priority (lower value = preferred).
    ///
    /// In a discrete-event machine priority can only break *ties*: a
    /// thread ready at an earlier simulated instant always runs first
    /// regardless of priority. Children inherit the forking parent's
    /// priority. Applies to scheduling decisions made after the call.
    pub fn set_priority(&mut self, pid: Pid, prio: u8) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        p.prio = prio;
        // Re-key live queue entries: supersede (gen bump) and re-push
        // every currently ready thread under the new priority.
        let ready: Vec<(u32, f64)> = p
            .threads
            .iter()
            .filter_map(|(tid, t)| match t.state {
                ThreadState::Ready { at } => Some((*tid, at)),
                _ => None,
            })
            .collect();
        for (tid, at) in ready {
            self.make_ready(pid, tid, at);
        }
    }

    /// Installs a listening descriptor fed by a synthetic traffic source.
    pub fn install_listener(
        &mut self,
        pid: Pid,
        template: ConnTemplate,
        conns: u64,
    ) -> SysResult<Fd> {
        let id = self.vfs.create_listener(template, conns);
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        Ok(p.fds.insert(FdKind::Listener(id)))
    }

    // ---- inspection --------------------------------------------------------

    /// The VFS (harness-side verification of files, served counts, …).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Completed forks.
    pub fn fork_log(&self) -> &[ForkEvent] {
        &self.fork_log
    }

    /// Process exits.
    pub fn exit_log(&self) -> &[ExitEvent] {
        &self.exit_log
    }

    /// Closed background-copy windows of pipelined forks, in close
    /// order: each records commit time, copy-complete time, and size.
    pub fn pipeline_log(&self) -> &[PipelineEvent] {
        &self.pipeline_log
    }

    /// OOM kills performed by the fork path's last resort, in kill order.
    pub fn oom_log(&self) -> &[OomEvent] {
        &self.oom_log
    }

    /// Pages still queued behind committed pipelined forks, machine-wide.
    pub fn copy_backlog(&self) -> u64 {
        self.copy_engines
            .keys()
            .map(|pid| self.os.pipeline_pending(*pid))
            .sum()
    }

    /// Merged operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Latest simulated time across cores.
    pub fn now(&self) -> f64 {
        self.cores.max_now()
    }

    /// Exit code of a finished process.
    pub fn exit_code(&self, pid: Pid) -> Option<i32> {
        self.procs.get(&pid).and_then(|p| p.exit_code)
    }

    /// Downcasts the main thread's program state for result extraction.
    pub fn program<T: 'static>(&self, pid: Pid) -> Option<&T> {
        self.thread_program(pid, MAIN_TID)
    }

    /// Downcasts a specific thread's program state.
    pub fn thread_program<T: 'static>(&self, pid: Pid, tid: u32) -> Option<&T> {
        self.procs
            .get(&pid)
            .and_then(|p| p.threads.get(&tid))
            .and_then(|t| t.program.as_ref())
            .and_then(|b| b.as_any().downcast_ref::<T>())
    }

    /// True if the process has fully exited.
    pub fn is_finished(&self, pid: Pid) -> bool {
        self.procs
            .get(&pid)
            .is_none_or(|p| p.life != ProcLife::Alive)
    }

    /// Number of live threads in a process.
    pub fn thread_count(&self, pid: Pid) -> usize {
        self.procs.get(&pid).map_or(0, |p| {
            p.threads
                .values()
                .filter(|t| !matches!(t.state, ThreadState::Dead))
                .count()
        })
    }

    /// What a thread is blocked on, if it is indefinitely parked.
    pub fn blocked_on(&self, pid: Pid, tid: u32) -> Option<BlockedOn> {
        self.procs
            .get(&pid)
            .and_then(|p| p.threads.get(&tid))
            .and_then(|t| t.blocked_on)
    }

    /// Run-queue entries currently held (stale entries included; event
    /// engine only — the lockstep engine keeps no queue).
    pub fn run_queue_len(&self) -> usize {
        self.runq.len()
    }

    // ---- the scheduler loop ---------------------------------------------

    /// Runs until nothing is runnable or the time limit is reached.
    pub fn run(&mut self) {
        loop {
            if !self.step() {
                break;
            }
        }
    }

    /// Executes one scheduling step. Returns false when idle/finished.
    pub fn step(&mut self) -> bool {
        match self.config.engine {
            SchedEngine::Lockstep => self.step_lockstep(),
            SchedEngine::EventDriven => self.step_event(),
        }
    }

    /// The reference engine: linear scan for the earliest-ready thread.
    fn step_lockstep(&mut self) -> bool {
        let thread = self
            .procs
            .iter()
            .filter(|(_, p)| p.life == ProcLife::Alive)
            .flat_map(|(pid, p)| {
                p.threads.iter().filter_map(|(tid, t)| match t.state {
                    ThreadState::Ready { at } => Some((*pid, *tid, at)),
                    _ => None,
                })
            })
            .min_by(|a, b| a.2.total_cmp(&b.2));
        let reclaim_at = self.reclaim_engine.as_ref().map(|e| e.next_at);
        // A pending copy engine fires like any other ready entity; ties
        // go to the engine in BOTH engines so schedules cannot drift.
        if let Some((cpid, cat)) = self.next_copy_event() {
            if thread.is_none_or(|(_, _, t_at)| cat <= t_at)
                && reclaim_at.is_none_or(|rat| cat <= rat)
            {
                if let Some(limit) = self.config.time_limit {
                    if cat >= limit {
                        return false;
                    }
                }
                return self.pump_copy_engine(cpid, cat);
            }
        }
        // The reclaim daemon yields to copy streams at ties (copied pages
        // are latency-critical, scrubbing is slack work) but beats
        // threads, so magazines refill before the next fork allocates.
        if let Some(rat) = reclaim_at {
            if thread.is_none_or(|(_, _, t_at)| rat <= t_at) {
                if let Some(limit) = self.config.time_limit {
                    if rat >= limit {
                        return false;
                    }
                }
                return self.pump_reclaim(rat);
            }
        }
        let Some((pid, tid, ready_at)) = thread else {
            return false;
        };
        if let Some(limit) = self.config.time_limit {
            if ready_at >= limit {
                return false;
            }
        }
        self.dispatch(pid, tid, ready_at)
    }

    /// The event engine: pop run-queue entries (lazily discarding stale
    /// ones) until a live thread is found.
    fn step_event(&mut self) -> bool {
        loop {
            let copy = self.next_copy_event();
            let reclaim_at = self.reclaim_engine.as_ref().map(|e| e.next_at);
            let Some(entry) = self.runq.pop() else {
                // Nothing queued: background engines alone advance time
                // (copy beats reclaim at ties, as in the lockstep scan).
                if let Some((cpid, cat)) = copy {
                    if reclaim_at.is_none_or(|rat| cat <= rat) {
                        if let Some(limit) = self.config.time_limit {
                            if cat >= limit {
                                return false;
                            }
                        }
                        return self.pump_copy_engine(cpid, cat);
                    }
                }
                if let Some(rat) = reclaim_at {
                    if let Some(limit) = self.config.time_limit {
                        if rat >= limit {
                            return false;
                        }
                    }
                    return self.pump_reclaim(rat);
                }
                return false;
            };
            let current = self
                .procs
                .get(&entry.pid)
                .filter(|p| p.life == ProcLife::Alive)
                .and_then(|p| p.threads.get(&entry.tid))
                .and_then(|t| match t.state {
                    ThreadState::Ready { at } if t.gen == entry.gen => Some(at),
                    _ => None,
                });
            let Some(ready_at) = current else {
                continue; // stale: superseded since it was pushed
            };
            // The popped entry is the earliest live thread, so these are
            // the same engine-vs-thread comparisons the lockstep scan
            // makes: copy beats reclaim beats threads at equal times.
            if let Some((cpid, cat)) = copy {
                if cat <= ready_at && reclaim_at.is_none_or(|rat| cat <= rat) {
                    self.runq.push(entry);
                    if let Some(limit) = self.config.time_limit {
                        if cat >= limit {
                            return false;
                        }
                    }
                    return self.pump_copy_engine(cpid, cat);
                }
            }
            if let Some(rat) = reclaim_at {
                if rat <= ready_at {
                    self.runq.push(entry);
                    if let Some(limit) = self.config.time_limit {
                        if rat >= limit {
                            return false;
                        }
                    }
                    return self.pump_reclaim(rat);
                }
            }
            if let Some(limit) = self.config.time_limit {
                if ready_at >= limit {
                    // Idle-at-limit, not consumed: keep the entry so a
                    // later step() (e.g. after raising the limit) still
                    // finds the thread.
                    self.runq.push(entry);
                    return false;
                }
            }
            return self.dispatch(entry.pid, entry.tid, ready_at);
        }
    }

    /// The earliest pending background-copy firing (ties: lowest child
    /// pid, from the map's iteration order).
    fn next_copy_event(&self) -> Option<(Pid, f64)> {
        self.copy_engines
            .iter()
            .min_by(|a, b| a.1.next_at.total_cmp(&b.1.next_at))
            .map(|(pid, e)| (*pid, e.next_at))
    }

    /// Fires `pid`'s copy engine once at simulated time `at`: one chunk
    /// streams in, and the next firing lands after the chunk's cost. The
    /// engine advances its own stream clock rather than occupying a core
    /// — it models the asynchronous kernel copy stream behind a
    /// committed fork, whose pages a child fault can also claim
    /// on-demand between firings.
    fn pump_copy_engine(&mut self, pid: Pid, at: f64) -> bool {
        let mut ctx = Ctx::new();
        match self.os.pipeline_step(&mut ctx, pid) {
            Ok(true) => {
                let dur = ctx.total();
                self.counters.merge(&ctx.counters);
                if self.os.pipeline_pending(pid) == 0 {
                    let e = self
                        .copy_engines
                        .remove(&pid)
                        .expect("pumped engine exists");
                    self.pipeline_log.push(PipelineEvent {
                        child: pid,
                        committed_at: e.committed_at,
                        done_at: at + dur,
                        pages: e.pages,
                    });
                } else if let Some(e) = self.copy_engines.get_mut(&pid) {
                    e.next_at = at + dur;
                    e.fails = 0;
                }
            }
            Ok(false) => {
                // Drained out of band. If the child is alive, demand
                // jumps finished the window — the last chunk landed on
                // the faulting child's own step, so the engine's next
                // firing is the first instant completion is observable.
                // A dead child's window just closes unlogged.
                let e = self
                    .copy_engines
                    .remove(&pid)
                    .expect("pumped engine exists");
                let alive = self
                    .procs
                    .get(&pid)
                    .is_some_and(|p| p.life == ProcLife::Alive);
                if alive {
                    self.pipeline_log.push(PipelineEvent {
                        child: pid,
                        committed_at: e.committed_at,
                        done_at: at,
                        pages: e.pages,
                    });
                }
            }
            Err(_) => {
                // Chunk retries exhausted (sustained memory pressure):
                // back off and re-fire — exits may free frames, and
                // demand faults keep latency-critical pages covered
                // meanwhile. After repeated failures the engine retires
                // and the window is left to the demand path entirely.
                self.counters.merge(&ctx.counters);
                let mut retire = false;
                if let Some(e) = self.copy_engines.get_mut(&pid) {
                    e.fails += 1;
                    e.next_at = at + ctx.total() + self.os.cost().reclaim_backoff;
                    retire = e.fails > 8;
                }
                if retire {
                    self.copy_engines.remove(&pid);
                }
            }
        }
        // A streamed chunk allocates frames, which can push the
        // allocator over a pressure watermark: give the daemon a chance
        // to engage at this deterministic instant.
        let t = at + ctx.total();
        self.maybe_arm_reclaim(t);
        true
    }

    /// Arms the background reclaim daemon at simulated time `at` if the
    /// backend reports pending work and the daemon is not already armed.
    /// Called at every point the memory state can change (end of a
    /// dispatched step, after a background-copy chunk, after spawn), so
    /// both scheduling engines arm it at identical instants.
    fn maybe_arm_reclaim(&mut self, at: f64) {
        if self.reclaim_engine.is_none() && self.os.reclaim_pending() {
            self.reclaim_engine = Some(ReclaimEngine {
                next_at: at,
                fails: 0,
            });
        }
    }

    /// Fires the background reclaim daemon once at simulated time `at`:
    /// one bounded batch of frames is scrubbed into the clean-frame
    /// magazines, and the next pass lands after the batch's cost. Like
    /// the copy engines the daemon advances its own clock rather than
    /// occupying a core — it models an asynchronous kernel scrubber
    /// thread running in scheduler slack.
    fn pump_reclaim(&mut self, at: f64) -> bool {
        let mut ctx = Ctx::new();
        match self.os.reclaim_step(&mut ctx) {
            Ok(n) => {
                let dur = ctx.total();
                self.counters.merge(&ctx.counters);
                if n == 0 || !self.os.reclaim_pending() {
                    // Queues drained or pressure back to normal: disarm.
                    // The next memory-state change re-arms the daemon.
                    self.reclaim_engine = None;
                } else if let Some(e) = &mut self.reclaim_engine {
                    e.next_at = at + dur;
                    e.fails = 0;
                }
            }
            Err(_) => {
                // An aborted pass rolled itself back (nothing scrubbed,
                // nothing leaked): back off and re-fire. After repeated
                // failures the daemon retires; inline reclaim on the
                // fork/fault paths still covers correctness.
                self.counters.merge(&ctx.counters);
                let mut retire = false;
                if let Some(e) = &mut self.reclaim_engine {
                    e.fails += 1;
                    e.next_at = at + ctx.total() + self.os.cost().reclaim_backoff;
                    retire = e.fails > 8;
                }
                if retire {
                    self.reclaim_engine = None;
                }
            }
        }
        true
    }

    /// Runs the selected thread: core choice, pending-call retry, program
    /// resume, outcome handling. Shared verbatim by both engines so their
    /// schedules cannot drift apart.
    fn dispatch(&mut self, pid: Pid, tid: u32, ready_at: f64) -> bool {
        // Pick the allowed core with the earliest time.
        let affinity = self.procs[&pid].affinity.clone();
        let core_idx = (0..self.cores.len())
            .filter(|i| affinity.as_ref().is_none_or(|a| a.contains(i)))
            .min_by(|a, b| self.cores.now(*a).total_cmp(&self.cores.now(*b)))
            .expect("affinity excludes every core");
        let start = self.cores.now(core_idx).max(ready_at);
        if let Some(limit) = self.config.time_limit {
            if start >= limit {
                // Ready, but no core can run it before the window closes.
                // Re-queue untouched (same gen) for the event engine.
                let prio = self.procs[&pid].prio;
                let gen = self.procs[&pid].threads[&tid].gen;
                self.runq.push(QEntry::new(ready_at, prio, pid, tid, gen));
                return false;
            }
        }

        let mut ctx = Ctx::new();
        // Context switch when the core last ran a different thread.
        if let Some(last) = self.cores.last(core_idx) {
            if last != (pid, tid) {
                ctx.kernel(self.os.ctx_switch_cost(last.0, pid));
                ctx.counters.ctx_switches += 1;
            }
        }

        // Retry any pending blocking call first. A retried call can
        // complete I/O (a woken writer fills a pipe, a woken consumer
        // frees ring slots), so its wake events must be delivered even
        // on the early returns — dropping them here is exactly the
        // lost-wakeup shape the multi-reader EOF bug had.
        let mut events = Vec::new();
        let thread = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.threads.get_mut(&tid))
            .expect("picked thread exists");
        let mut resume_with = thread.resume_with;
        if let Some(call) = thread.pending.take() {
            match self.service_blocking(pid, tid, call, start, &mut ctx, &mut events) {
                ServiceOutcome::Done(r) => resume_with = Resume::Ret(r),
                ServiceOutcome::BlockIndefinite(call) => {
                    self.block_thread(pid, tid, call);
                    let end = self.finish_step(core_idx, pid, tid, start, ctx);
                    self.deliver_events(events, end);
                    self.maybe_arm_reclaim(end);
                    return true;
                }
                ServiceOutcome::RetryAt(call, t_at) => {
                    let t = self.thread_mut(pid, tid);
                    t.pending = Some(call);
                    t.state = ThreadState::Ready { at: t_at };
                    let end = self.finish_step(core_idx, pid, tid, start, ctx);
                    self.deliver_events(events, end);
                    self.maybe_arm_reclaim(end);
                    return true;
                }
            }
        }

        // Run the program.
        let mut program = self
            .thread_mut(pid, tid)
            .program
            .take()
            .expect("ready thread has a program");
        let outcome = {
            let mut env = StepEnv {
                os: &mut self.os,
                vfs: &mut self.vfs,
                fds: &mut self.procs.get_mut(&pid).unwrap().fds,
                pid,
                start,
                ctx: &mut ctx,
                events: &mut events,
            };
            program.resume(&mut env, resume_with)
        };
        self.thread_mut(pid, tid).program = Some(program);

        // Handle the outcome.
        match outcome {
            StepOutcome::Exit(code) => {
                let end_hint = start + ctx.total();
                if tid == MAIN_TID {
                    self.handle_exit(pid, code, end_hint, &mut ctx);
                } else {
                    self.handle_thread_exit(pid, tid, code, end_hint);
                }
            }
            StepOutcome::Fork => {
                self.handle_fork(pid, tid, start, &mut ctx);
            }
            StepOutcome::Exec { image, program } => {
                // execve: tear down the old image, load the new one. File
                // descriptors and parent/children links are preserved; all
                // other threads die (POSIX execve semantics).
                ctx.kernel(self.os.cost().exec_fixed);
                ctx.counters.syscalls += 1;
                ctx.counters.execs += 1;
                self.os.destroy(&mut ctx, pid);
                match self.os.spawn(&mut ctx, pid, &image) {
                    Ok(()) => {
                        let end = start + ctx.total();
                        let p = self.procs.get_mut(&pid).unwrap();
                        p.threads.clear();
                        p.threads
                            .insert(MAIN_TID, Thread::new(program.0, Resume::Start, end));
                        p.next_tid = MAIN_TID + 1;
                        if tid != MAIN_TID {
                            // exec from a secondary thread: the fresh main
                            // thread is not the thread finish_step
                            // re-enqueues, so enqueue it here.
                            self.make_ready(pid, MAIN_TID, end);
                        }
                    }
                    Err(_) => {
                        // Past the point of no return: the process dies.
                        let end = start + ctx.total();
                        self.handle_exit(pid, 127, end, &mut ctx);
                    }
                }
            }
            StepOutcome::Block(call) => {
                let now = start + ctx.total();
                match self.service_blocking(pid, tid, call, now, &mut ctx, &mut events) {
                    ServiceOutcome::Done(r) => {
                        let t = self.thread_mut(pid, tid);
                        t.resume_with = Resume::Ret(r);
                        t.state = ThreadState::Ready { at: now };
                    }
                    ServiceOutcome::BlockIndefinite(call) => {
                        self.block_thread(pid, tid, call);
                    }
                    ServiceOutcome::RetryAt(call, t_at) => {
                        let t = self.thread_mut(pid, tid);
                        t.pending = Some(call);
                        t.state = ThreadState::Ready { at: t_at };
                    }
                }
            }
        }

        let end = self.finish_step(core_idx, pid, tid, start, ctx);
        self.deliver_events(events, end);
        self.maybe_arm_reclaim(end);
        true
    }

    fn thread_mut(&mut self, pid: Pid, tid: u32) -> &mut Thread {
        self.procs
            .get_mut(&pid)
            .and_then(|p| p.threads.get_mut(&tid))
            .expect("thread exists")
    }

    /// Transitions a thread into `Ready { at }` and enqueues it.
    ///
    /// Every transition into the ready state MUST go through here or
    /// through [`Machine::finish_step`] (which re-enqueues the thread
    /// that just ran): the run queue uses lazy deletion, so a ready
    /// thread without a live queue entry would never be scheduled by the
    /// event engine.
    fn make_ready(&mut self, pid: Pid, tid: u32, at: f64) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        let prio = p.prio;
        let Some(t) = p.threads.get_mut(&tid) else {
            return;
        };
        t.state = ThreadState::Ready { at };
        t.blocked_on = None;
        t.gen += 1;
        self.runq.push(QEntry::new(at, prio, pid, tid, t.gen));
    }

    /// Parks the running thread on an indefinite blocking call, recording
    /// what it waits for and (event engine) indexing pipe/conn waits so
    /// wakeup delivery is O(woken), not O(threads).
    fn block_thread(&mut self, pid: Pid, tid: u32, call: BlockingCall) {
        #[allow(clippy::cast_possible_truncation)]
        let on = match &call {
            BlockingCall::Wait => BlockedOn::Wait,
            BlockingCall::JoinThread { tid: jt } => BlockedOn::Join(*jt as u32),
            BlockingCall::Read { fd, .. } => {
                match self.procs.get(&pid).and_then(|p| p.fds.get(*fd).ok()) {
                    Some(FdKind::PipeRead(id)) => BlockedOn::Pipe(*id),
                    Some(FdKind::Conn(id)) => BlockedOn::Conn(*id),
                    // Only pipe/conn reads block indefinitely today.
                    _ => BlockedOn::Fault,
                }
            }
            BlockingCall::Write { fd, .. } => {
                match self.procs.get(&pid).and_then(|p| p.fds.get(*fd).ok()) {
                    Some(FdKind::PipeWrite(id)) => BlockedOn::Pipe(*id),
                    _ => BlockedOn::Fault,
                }
            }
            BlockingCall::RingPush { fd, .. } | BlockingCall::RingPop { fd, .. } => {
                match self.procs.get(&pid).and_then(|p| p.fds.get(*fd).ok()) {
                    Some(FdKind::RingProd(id) | FdKind::RingCons(id)) => BlockedOn::Ring(*id),
                    _ => BlockedOn::Fault,
                }
            }
            // Yield/Sleep/SpawnThread/Accept resolve to Done or a timed
            // retry; this arm is unreachable but harmless.
            _ => BlockedOn::Fault,
        };
        if self.config.engine == SchedEngine::EventDriven {
            match on {
                BlockedOn::Pipe(id) => self.pipe_waiters.entry(id).or_default().push((pid, tid)),
                BlockedOn::Conn(id) => self.conn_waiters.entry(id).or_default().push((pid, tid)),
                BlockedOn::Ring(id) => self.ring_waiters.entry(id).or_default().push((pid, tid)),
                _ => {}
            }
        }
        let t = self.thread_mut(pid, tid);
        t.pending = Some(call);
        t.state = ThreadState::Blocked;
        t.blocked_on = Some(on);
    }

    /// Reserves the big kernel lock for `dur` ns no earlier than
    /// `want_start`, returning the actual acquisition time (first gap in
    /// the busy schedule — kernel windows of concurrent steps must not
    /// overlap, but a window entirely in the past or future of another
    /// does not conflict with it).
    fn lock_acquire(&mut self, want_start: f64, dur: f64) -> f64 {
        let min_now = self.cores.min_now();
        self.lock_busy.retain(|&(_, e)| e > min_now - 1.0);
        self.lock_busy.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut t = want_start;
        for &(s, e) in &self.lock_busy {
            if t + dur <= s {
                break; // fits in the gap before this interval
            }
            if t < e {
                t = e; // overlaps: start after it
            }
        }
        self.lock_busy.push((t, t + dur));
        t
    }

    /// Applies step time to the core (with big-kernel-lock serialization)
    /// and merges counters; re-enqueues the thread that just ran if it is
    /// still runnable. Returns the step's end time.
    fn finish_step(&mut self, core_idx: usize, pid: Pid, tid: u32, start: f64, ctx: Ctx) -> f64 {
        let end = if self.os.big_kernel_lock() && self.cores.len() > 1 && ctx.kernel_ns > 0.0 {
            let kstart = self.lock_acquire(start + ctx.user_ns, ctx.kernel_ns);
            kstart + ctx.kernel_ns
        } else {
            start + ctx.total()
        };
        self.cores.advance_to(core_idx, end);
        self.cores.note_ran(core_idx, pid, tid);
        self.counters.merge(&ctx.counters);
        // The thread that just ran can never resume before this step
        // ends. Its queue entry (if any) predates outcome handling, so
        // push a superseding one — demoted behind same-instant peers when
        // the step overran the configured time slice.
        let over_slice = self.config.slice_ns.is_some_and(|s| end - start > s);
        let mut requeue = None;
        if let Some(t) = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.threads.get_mut(&tid))
        {
            if let ThreadState::Ready { at } = &mut t.state {
                if *at < end {
                    *at = end;
                }
                t.gen += 1;
                requeue = Some((*at, t.gen));
            }
        }
        if let Some((at, gen)) = requeue {
            let prio = self.procs[&pid].prio;
            let entry = if over_slice {
                self.runq.demoted(at, prio, pid, tid, gen)
            } else {
                QEntry::new(at, prio, pid, tid, gen)
            };
            self.runq.push(entry);
        }
        end
    }

    /// Services a blocking call by thread (`pid`, `tid`) at simulated time
    /// `now`. Side effects that may unblock *other* threads (draining a
    /// pipe, pushing to a ring) are appended to `events`; the caller
    /// delivers them after the step completes.
    fn service_blocking(
        &mut self,
        pid: Pid,
        tid: u32,
        call: BlockingCall,
        now: f64,
        ctx: &mut Ctx,
        events: &mut Vec<WakeEvent>,
    ) -> ServiceOutcome {
        match call {
            BlockingCall::Yield => {
                charge_syscall(&self.os, ctx, 0);
                ServiceOutcome::Done(Ok(0))
            }
            BlockingCall::Sleep { ns } => ServiceOutcome::RetryAt(BlockingCall::Yield, now + ns),
            BlockingCall::SpawnThread { program } => {
                charge_syscall(&self.os, ctx, 0);
                ctx.kernel(self.os.cost().proc_exit); // thread-create ≈ teardown cost class
                let new_tid = {
                    let p = self.procs.get_mut(&pid).expect("caller exists");
                    let new_tid = p.next_tid;
                    p.next_tid += 1;
                    p.threads
                        .insert(new_tid, Thread::new(program.0, Resume::Start, now));
                    new_tid
                };
                self.make_ready(pid, new_tid, now);
                ServiceOutcome::Done(Ok(u64::from(new_tid)))
            }
            BlockingCall::JoinThread { tid: target } => {
                charge_syscall(&self.os, ctx, 0);
                #[allow(clippy::cast_possible_truncation)]
                let target = target as u32;
                if target == tid {
                    return ServiceOutcome::Done(Err(Errno::Inval));
                }
                let Some(t) = self.procs.get(&pid).and_then(|p| p.threads.get(&target)) else {
                    return ServiceOutcome::Done(Err(Errno::Inval));
                };
                match t.exited {
                    Some((code, at)) if at <= now + 1e-9 => {
                        ServiceOutcome::Done(Ok(code as u32 as u64))
                    }
                    Some((_, at)) => ServiceOutcome::RetryAt(
                        BlockingCall::JoinThread {
                            tid: u64::from(target),
                        },
                        at,
                    ),
                    None => ServiceOutcome::BlockIndefinite(BlockingCall::JoinThread {
                        tid: u64::from(target),
                    }),
                }
            }
            BlockingCall::Wait => {
                charge_syscall(&self.os, ctx, 0);
                // Reap only children that have exited by simulated `now`:
                // a zombie created later in simulated time (by a step that
                // happened to execute earlier in host order) is not yet
                // visible. The zombie table is ordered by (exit time,
                // arrival order), so the first entry is exactly the child
                // the old linear scan picked.
                let p = self.procs.get_mut(&pid).expect("caller exists");
                let first = p.zombies.iter().next().map(|(k, v)| (*k, *v));
                if let Some((key, (child, code, z_at))) = first {
                    if z_at <= now + 1e-9 {
                        p.zombies.remove(&key);
                        p.children.remove(&child);
                        ctx.kernel(self.os.cost().proc_wait);
                        if let Some(cp) = self.procs.get_mut(&child) {
                            cp.life = ProcLife::Dead;
                        }
                        // POSIX-style status: low 32 bits the PID, high 32
                        // the child's exit code.
                        ServiceOutcome::Done(
                            Ok(u64::from(child.0) | (u64::from(code as u32) << 32)),
                        )
                    } else {
                        // A child has exited, but only at a later simulated
                        // time: wait until then.
                        ServiceOutcome::RetryAt(BlockingCall::Wait, z_at)
                    }
                } else if p.children.is_empty() {
                    ServiceOutcome::Done(Err(Errno::Child))
                } else {
                    ServiceOutcome::BlockIndefinite(BlockingCall::Wait)
                }
            }
            BlockingCall::Accept { fd } => {
                charge_syscall(&self.os, ctx, 0);
                let kind = match self.procs[&pid].fds.get(fd) {
                    Ok(k) => k.clone(),
                    Err(e) => return ServiceOutcome::Done(Err(e)),
                };
                let FdKind::Listener(lid) = kind else {
                    return ServiceOutcome::Done(Err(Errno::BadFd));
                };
                match self.vfs.accept(lid, now) {
                    Ok(Some(conn)) => {
                        let p = self.procs.get_mut(&pid).unwrap();
                        let cfd = p.fds.insert(FdKind::Conn(conn));
                        ServiceOutcome::Done(Ok(cfd.0 as u64))
                    }
                    Ok(None) => ServiceOutcome::Done(Err(Errno::Again)),
                    Err(e) => ServiceOutcome::Done(Err(e)),
                }
            }
            BlockingCall::Read { fd, buf, len } => {
                let kind = match self.procs[&pid].fds.get(fd) {
                    Ok(k) => k.clone(),
                    Err(e) => return ServiceOutcome::Done(Err(e)),
                };
                match kind {
                    FdKind::PipeRead(id) => match self.vfs.pipe_read(id, len, now) {
                        Ok(PipeRead::Data(data)) => {
                            charge_syscall(&self.os, ctx, data.len() as u64);
                            let n = data.len() as u64;
                            ctx.kernel(
                                self.os.copyio_cost_per_byte() * n as f64
                                    + self.os.cost().pipe_per_byte * n as f64,
                            );
                            if n > 0 {
                                if let Err(e) = self.os.store(ctx, pid, &buf, &data) {
                                    return ServiceOutcome::Done(Err(e));
                                }
                                // Space drained: writers blocked on the
                                // full pipe can retry.
                                events.push(WakeEvent::PipeDrained(id));
                            }
                            ServiceOutcome::Done(Ok(n))
                        }
                        Ok(PipeRead::Eof) => {
                            charge_syscall(&self.os, ctx, 0);
                            ServiceOutcome::Done(Ok(0))
                        }
                        Ok(PipeRead::NotUntil(t)) => {
                            ServiceOutcome::RetryAt(BlockingCall::Read { fd, buf, len }, t)
                        }
                        Ok(PipeRead::Empty) => {
                            ServiceOutcome::BlockIndefinite(BlockingCall::Read { fd, buf, len })
                        }
                        Err(e) => ServiceOutcome::Done(Err(e)),
                    },
                    FdKind::Conn(id) => match self.vfs.conn_read(id, now) {
                        Ok(ConnRead::Ready(req_bytes)) => {
                            let n = req_bytes.min(len);
                            charge_syscall(&self.os, ctx, n);
                            ctx.kernel(self.os.copyio_cost_per_byte() * n as f64);
                            let data = vec![0x47u8; n as usize]; // 'G' for GET
                            if let Err(e) = self.os.store(ctx, pid, &buf, &data) {
                                return ServiceOutcome::Done(Err(e));
                            }
                            ServiceOutcome::Done(Ok(n))
                        }
                        Ok(ConnRead::Eof) => {
                            charge_syscall(&self.os, ctx, 0);
                            ServiceOutcome::Done(Ok(0))
                        }
                        Ok(ConnRead::NotUntil(t)) => {
                            ServiceOutcome::RetryAt(BlockingCall::Read { fd, buf, len }, t)
                        }
                        Err(e) => ServiceOutcome::Done(Err(e)),
                    },
                    FdKind::File { path, offset } => match self.vfs.read_file(&path, offset, len) {
                        Ok(data) => {
                            charge_syscall(&self.os, ctx, data.len() as u64);
                            let n = data.len() as u64;
                            ctx.kernel(
                                self.os.cost().fs_op
                                    + self.os.cost().ramdisk_per_byte * n as f64
                                    + self.os.copyio_cost_per_byte() * n as f64,
                            );
                            if n > 0 {
                                if let Err(e) = self.os.store(ctx, pid, &buf, &data) {
                                    return ServiceOutcome::Done(Err(e));
                                }
                                if let Ok(FdKind::File { offset, .. }) =
                                    self.procs.get_mut(&pid).unwrap().fds.get_mut(fd)
                                {
                                    *offset += n;
                                }
                            }
                            ServiceOutcome::Done(Ok(n))
                        }
                        Err(e) => ServiceOutcome::Done(Err(e)),
                    },
                    _ => ServiceOutcome::Done(Err(Errno::BadFd)),
                }
            }
            BlockingCall::Write { fd, buf, len } => {
                charge_syscall(&self.os, ctx, len);
                let kind = match self.procs[&pid].fds.get(fd) {
                    Ok(k) => k.clone(),
                    Err(e) => return ServiceOutcome::Done(Err(e)),
                };
                // Only pipes can block on write; files/conns use the
                // non-blocking `sys_write`.
                let FdKind::PipeWrite(id) = kind else {
                    return ServiceOutcome::Done(Err(Errno::Inval));
                };
                let mut data = vec![0u8; len as usize];
                if let Err(e) = self.os.load(ctx, pid, &buf, &mut data) {
                    return ServiceOutcome::Done(Err(e));
                }
                match self.vfs.pipe_write(id, &data, now) {
                    Ok(n) => {
                        ctx.kernel(
                            self.os.cost().pipe_per_byte * n as f64
                                + self.os.copyio_cost_per_byte() * n as f64,
                        );
                        events.push(WakeEvent::PipeWritten(id));
                        ServiceOutcome::Done(Ok(n))
                    }
                    // Full: park until a read drains space (PipeDrained).
                    Err(Errno::Again) => {
                        ServiceOutcome::BlockIndefinite(BlockingCall::Write { fd, buf, len })
                    }
                    Err(e) => ServiceOutcome::Done(Err(e)),
                }
            }
            BlockingCall::RingPush { fd, ring, buf, len } => {
                charge_syscall(&self.os, ctx, len);
                let kind = match self.procs[&pid].fds.get(fd) {
                    Ok(k) => k.clone(),
                    Err(e) => return ServiceOutcome::Done(Err(e)),
                };
                let FdKind::RingProd(id) = kind else {
                    return ServiceOutcome::Done(Err(Errno::BadFd));
                };
                // The sealed endpoint capability *is* the authority: the
                // kernel unseals it with the machine-held authority and
                // drives the shared window through the unsealed view.
                // After fork this is the child's relocated register cap.
                let Ok(window) = ring.unseal(&ring::seal_authority()) else {
                    return ServiceOutcome::Done(Err(Errno::Perm));
                };
                match self.vfs.ring_meta(id) {
                    // EPIPE only once a consumer has come *and* gone;
                    // before the first attach the ring buffers like a FIFO.
                    Ok(m) if m.cons_ends == 0 && m.ever_cons => {
                        return ServiceOutcome::Done(Err(Errno::BadFd)); // EPIPE
                    }
                    Ok(_) => {}
                    Err(e) => return ServiceOutcome::Done(Err(e)),
                }
                let mut data = vec![0u8; len as usize];
                if let Err(e) = self.os.load(ctx, pid, &buf, &mut data) {
                    return ServiceOutcome::Done(Err(e));
                }
                match ring::ring_push_raw(&mut self.os, ctx, pid, &window, &data, now) {
                    Ok(RawPush::Pushed(seq)) => {
                        let m = self.vfs.ring_meta_mut(id).expect("ring exists");
                        m.pushed += 1;
                        RingMeta::mix(&mut m.push_digest, seq, &data);
                        ctx.counters.ring_msgs += 1;
                        events.push(WakeEvent::RingPushed(id));
                        ServiceOutcome::Done(Ok(len))
                    }
                    Ok(RawPush::Full) => {
                        ctx.counters.ring_full_stalls += 1;
                        ServiceOutcome::BlockIndefinite(BlockingCall::RingPush {
                            fd,
                            ring,
                            buf,
                            len,
                        })
                    }
                    Ok(RawPush::NotUntil(t)) => {
                        ServiceOutcome::RetryAt(BlockingCall::RingPush { fd, ring, buf, len }, t)
                    }
                    Err(e) => ServiceOutcome::Done(Err(e)),
                }
            }
            BlockingCall::RingPop { fd, ring, buf } => {
                charge_syscall(&self.os, ctx, 0);
                let kind = match self.procs[&pid].fds.get(fd) {
                    Ok(k) => k.clone(),
                    Err(e) => return ServiceOutcome::Done(Err(e)),
                };
                let FdKind::RingCons(id) = kind else {
                    return ServiceOutcome::Done(Err(Errno::BadFd));
                };
                let Ok(window) = ring.unseal(&ring::seal_authority()) else {
                    return ServiceOutcome::Done(Err(Errno::Perm));
                };
                match ring::ring_pop_raw(&mut self.os, ctx, pid, &window, now) {
                    Ok(RawPop::Popped { seq, data }) => {
                        if let Err(e) = self.os.store(ctx, pid, &buf, &data) {
                            return ServiceOutcome::Done(Err(e));
                        }
                        let m = self.vfs.ring_meta_mut(id).expect("ring exists");
                        m.popped += 1;
                        RingMeta::mix(&mut m.pop_digest, seq, &data);
                        events.push(WakeEvent::RingPopped(id));
                        ServiceOutcome::Done(Ok(data.len() as u64))
                    }
                    Ok(RawPop::Empty) => {
                        let eof = self
                            .vfs
                            .ring_meta(id)
                            .is_ok_and(|m| m.prod_ends == 0 && m.ever_prod);
                        if eof {
                            // Drained with no producers left: EOF, like a
                            // pipe read.
                            ServiceOutcome::Done(Ok(0))
                        } else {
                            ServiceOutcome::BlockIndefinite(BlockingCall::RingPop { fd, ring, buf })
                        }
                    }
                    Ok(RawPop::NotUntil(t)) => {
                        ServiceOutcome::RetryAt(BlockingCall::RingPop { fd, ring, buf }, t)
                    }
                    Err(e) => ServiceOutcome::Done(Err(e)),
                }
            }
        }
    }

    fn handle_fork(&mut self, parent: Pid, tid: u32, start: f64, ctx: &mut Ctx) {
        charge_syscall(&self.os, ctx, 0);
        let k_before = ctx.kernel_ns;
        let child = Pid(self.next_pid);
        self.next_pid += 1;
        let mut r = self.os.fork(ctx, parent, child);
        if self.config.oom_kill {
            // The last resort: admission failed even after the backend's
            // degrade ladder and inline reclaim retries. Kill victims
            // (deterministic badness order) and retry until the fork
            // admits or no victim remains. Each iteration removes one
            // live process, so the loop is bounded by the process count.
            while matches!(r, Err(Errno::NoMem)) {
                let Some((victim, resident)) = self.select_oom_victim(parent) else {
                    break;
                };
                // The journaled memory teardown is charged to the forking
                // thread — the fork call is what stalls for the kill.
                if self.os.oom_reap(ctx, victim).is_err() {
                    break;
                }
                ctx.counters.oom_kills += 1;
                let kill_at = start + ctx.total();
                self.oom_log.push(OomEvent {
                    victim,
                    requester: parent,
                    at: kill_at,
                    resident_pages: resident,
                });
                // The executive half of the exit (threads, fds, zombie,
                // parent wakeup) reuses the ordinary exit machinery; its
                // `destroy` is a no-op since the reap already ran. Like a
                // delivered kill it runs on its own ctx, counters merged.
                let mut kill_ctx = Ctx::new();
                self.handle_exit(victim, 137, kill_at, &mut kill_ctx);
                self.counters.merge(&kill_ctx.counters);
                r = self.os.fork(ctx, parent, child);
            }
        }
        match r {
            Ok(()) => {}
            Err(e) => {
                let t = self.thread_mut(parent, tid);
                t.resume_with = Resume::Ret(Err(e));
                t.state = ThreadState::Ready {
                    at: start + ctx.total(),
                };
                // finish_step re-enqueues the running thread.
                return;
            }
        }
        ctx.counters.forks += 1;
        let latency = ctx.kernel_ns - k_before + self.os.syscall_entry_cost();

        // Duplicate the fd table, adding sharers on pipe and ring ends.
        // The child's ring *endpoint capabilities* ride in its registers
        // and were relocated (seal intact) by the fork walk above; here
        // the registry only gains the duplicated descriptors.
        let fds = self.procs[&parent].fds.clone();
        for (_, kind) in fds.iter() {
            match kind {
                FdKind::PipeRead(id) => self.vfs.pipe_add_end(*id, false),
                FdKind::PipeWrite(id) => self.vfs.pipe_add_end(*id, true),
                FdKind::RingProd(id) => {
                    self.vfs.ring_add_end(*id, true);
                    ctx.counters.ring_caps_relocated += 1;
                }
                FdKind::RingCons(id) => {
                    self.vfs.ring_add_end(*id, false);
                    ctx.counters.ring_caps_relocated += 1;
                }
                _ => {}
            }
        }

        // fork copies ONLY the calling thread (paper §3.4).
        let program = self.procs[&parent]
            .threads
            .get(&tid)
            .and_then(|t| t.program.as_ref())
            .expect("forking thread has a program")
            .clone_box();
        let affinity = match &self.config.child_affinity {
            Some(a) => Some(a.clone()),
            None => self.procs[&parent].affinity.clone(),
        };
        let prio = self.procs[&parent].prio;
        let end = start + ctx.total();
        self.procs.insert(
            child,
            Proc::main_thread(
                program,
                Some(parent),
                fds,
                end,
                Resume::Forked(ForkResult::Child),
                affinity,
                prio,
            ),
        );
        self.make_ready(child, MAIN_TID, end);
        let p = self.procs.get_mut(&parent).unwrap();
        p.children.insert(child);
        let t = p.threads.get_mut(&tid).expect("forking thread");
        t.resume_with = Resume::Forked(ForkResult::Parent(child));
        t.state = ThreadState::Ready { at: end };
        self.fork_log.push(ForkEvent {
            parent,
            child,
            at: end,
            latency_ns: latency,
        });
        // A pipelined fork commits with pages still to copy: arm the
        // child's background copy engine at the commit instant.
        let pending = self.os.pipeline_pending(child);
        if pending > 0 {
            self.copy_engines.insert(
                child,
                CopyEngine {
                    next_at: end,
                    committed_at: end,
                    pages: pending,
                    fails: 0,
                },
            );
        }
    }

    /// Picks the OOM victim: the live forked process (never a root
    /// process, never the requester) with the largest resident set,
    /// breaking ties by deepest fork ancestry, then youngest pid. Every
    /// input is deterministic — resident pages from the backend's page
    /// table, ancestry from the process tree, iteration in pid order —
    /// so a given seed always kills the same victims in the same order.
    /// Returns the victim and its resident-page count, or `None` when no
    /// process is eligible (the fork then fails with `NoMem` as before).
    fn select_oom_victim(&self, requester: Pid) -> Option<(Pid, u64)> {
        self.procs
            .iter()
            .filter(|(pid, p)| {
                **pid != requester && p.life == ProcLife::Alive && p.parent.is_some()
            })
            .map(|(pid, _)| {
                let resident = self.os.resident_pages(*pid);
                (resident, self.fork_depth(*pid), pid.0, *pid)
            })
            .max_by_key(|&(resident, depth, raw, _)| (resident, depth, raw))
            .map(|(resident, _, _, pid)| (pid, resident))
    }

    /// Fork-tree depth of `pid` (root processes are depth 0).
    fn fork_depth(&self, pid: Pid) -> u32 {
        let mut depth = 0u32;
        let mut cur = self.procs.get(&pid).and_then(|p| p.parent);
        while let Some(p) = cur {
            depth += 1;
            cur = self.procs.get(&p).and_then(|q| q.parent);
        }
        depth
    }

    /// A non-main thread exited: record it and wake joiners.
    fn handle_thread_exit(&mut self, pid: Pid, tid: u32, code: i32, at: f64) {
        let mut woken = Vec::new();
        {
            let p = self.procs.get_mut(&pid).expect("process exists");
            if let Some(t) = p.threads.get_mut(&tid) {
                t.state = ThreadState::Dead;
                t.exited = Some((code, at));
            }
            // Wake siblings joined on this thread.
            for (jtid, t) in p.threads.iter_mut() {
                if matches!(t.state, ThreadState::Blocked)
                    && matches!(t.pending, Some(BlockingCall::JoinThread { tid: jt }) if jt == u64::from(tid))
                {
                    woken.push(*jtid);
                }
            }
        }
        for jtid in woken {
            self.make_ready(pid, jtid, at);
        }
    }

    fn handle_exit(&mut self, pid: Pid, code: i32, at: f64, ctx: &mut Ctx) {
        ctx.kernel(self.os.cost().proc_exit);
        // All threads die with the process.
        for t in self.procs.get_mut(&pid).unwrap().threads.values_mut() {
            t.state = ThreadState::Dead;
            if t.exited.is_none() {
                t.exited = Some((code, at));
            }
        }
        // Close all fds, collecting every wake event: the old code
        // discarded read-end drop events entirely and kept at most one
        // write-end event, losing wakeups when an exit closed several
        // ends at once.
        let fds = std::mem::take(&mut self.procs.get_mut(&pid).unwrap().fds);
        let mut events = Vec::new();
        for (_, kind) in fds.iter() {
            match kind {
                FdKind::PipeRead(id) => {
                    events.extend(self.vfs.pipe_drop_end(*id, false));
                }
                FdKind::PipeWrite(id) => {
                    events.extend(self.vfs.pipe_drop_end(*id, true));
                }
                FdKind::RingProd(id) => {
                    events.extend(self.vfs.ring_drop_end(*id, true));
                }
                FdKind::RingCons(id) => {
                    events.extend(self.vfs.ring_drop_end(*id, false));
                }
                _ => {}
            }
        }
        self.os.destroy(ctx, pid);

        // Orphan children.
        let children = std::mem::take(&mut self.procs.get_mut(&pid).unwrap().children);
        for c in children {
            if let Some(cp) = self.procs.get_mut(&c) {
                cp.parent = None;
                if cp.life == ProcLife::Zombie {
                    cp.life = ProcLife::Dead;
                }
            }
        }

        let parent = self.procs[&pid].parent;
        {
            let p = self.procs.get_mut(&pid).unwrap();
            p.exit_code = Some(code);
            p.life = if parent.is_some() {
                ProcLife::Zombie
            } else {
                ProcLife::Dead
            };
        }
        self.exit_log.push(ExitEvent { pid, at, code });

        // Notify the parent (any thread blocked in wait()).
        if let Some(pp) = parent {
            let mut waiter = None;
            if let Some(par) = self.procs.get_mut(&pp) {
                let key = (TimeKey::from_ns(at), par.zombie_seq);
                par.zombie_seq += 1;
                par.zombies.insert(key, (pid, code, at));
                for (wtid, t) in par.threads.iter_mut() {
                    if matches!(t.state, ThreadState::Blocked)
                        && matches!(t.pending, Some(BlockingCall::Wait))
                    {
                        waiter = Some(*wtid);
                        break; // one waiter reaps one child
                    }
                }
            }
            if let Some(wtid) = waiter {
                self.make_ready(pp, wtid, at);
            }
        }
        self.deliver_events(events, at);
    }

    /// Wakes threads blocked on the given events, and delivers kills.
    fn deliver_events(&mut self, events: Vec<WakeEvent>, at: f64) {
        if events.is_empty() {
            return;
        }
        for ev in &events {
            if let WakeEvent::Kill(target) = ev {
                let killable = self
                    .procs
                    .get(target)
                    .is_some_and(|p| p.life == ProcLife::Alive);
                if killable {
                    let mut ctx = Ctx::new();
                    self.handle_exit(*target, 137, at, &mut ctx);
                    self.counters.merge(&ctx.counters);
                }
            }
        }
        match self.config.engine {
            SchedEngine::Lockstep => self.deliver_by_scan(&events, at),
            SchedEngine::EventDriven => self.deliver_by_index(&events, at),
        }
    }

    /// Does one event wake a thread parked on `pending`? Shared by the
    /// lockstep scan and the event-engine index so the two paths cannot
    /// drift: the fd's *current* kind is re-checked on every event (a
    /// sibling may have closed and remapped the fd).
    fn wake_match(ev: &WakeEvent, pending: &BlockingCall, fds: &FdTable) -> bool {
        match (ev, pending) {
            // Readers wake on data or hangup of their pipe.
            (
                WakeEvent::PipeWritten(id) | WakeEvent::PipeHangup(id),
                BlockingCall::Read { fd, .. },
            ) => matches!(fds.get(*fd), Ok(FdKind::PipeRead(p)) if p == id),
            // Writers wake when space drains — including the last read
            // end closing, so they can fail with EPIPE.
            (WakeEvent::PipeDrained(id), BlockingCall::Write { fd, .. }) => {
                matches!(fds.get(*fd), Ok(FdKind::PipeWrite(p)) if p == id)
            }
            // Consumers wake on a push or producer hangup of their ring.
            (WakeEvent::RingPushed(id), BlockingCall::RingPop { fd, .. }) => {
                matches!(fds.get(*fd), Ok(FdKind::RingCons(r)) if r == id)
            }
            // Producers wake on a freed slot or consumer hangup.
            (WakeEvent::RingPopped(id), BlockingCall::RingPush { fd, .. }) => {
                matches!(fds.get(*fd), Ok(FdKind::RingProd(r)) if r == id)
            }
            (WakeEvent::ConnAdvanced(id), BlockingCall::Read { fd, .. }) => {
                matches!(fds.get(*fd), Ok(FdKind::Conn(c)) if c == id)
            }
            _ => false,
        }
    }

    /// Lockstep wake path: rescan every thread against the event batch
    /// (the original behavior the event engine must reproduce). Wakes
    /// *every* matching thread — the multi-reader EOF fix: one
    /// `PipeHangup` must release all readers blocked on the pipe.
    fn deliver_by_scan(&mut self, events: &[WakeEvent], at: f64) {
        for (_, p) in self.procs.iter_mut() {
            if p.life != ProcLife::Alive {
                continue;
            }
            for t in p.threads.values_mut() {
                if !matches!(t.state, ThreadState::Blocked) {
                    continue;
                }
                let Some(pending) = &t.pending else { continue };
                if events
                    .iter()
                    .any(|ev| Self::wake_match(ev, pending, &p.fds))
                {
                    t.state = ThreadState::Ready { at };
                    t.blocked_on = None;
                }
            }
        }
    }

    /// Event-engine wake path: consult only the affected pipe/ring/conn's
    /// waiter list. Entries whose thread died or moved on are dropped;
    /// entries whose thread is still parked but does not match this event
    /// stay registered.
    fn deliver_by_index(&mut self, events: &[WakeEvent], at: f64) {
        enum Chan {
            Pipe,
            Conn,
            Ring,
        }
        for ev in events {
            let (id, chan) = match ev {
                WakeEvent::PipeWritten(id)
                | WakeEvent::PipeHangup(id)
                | WakeEvent::PipeDrained(id) => (*id, Chan::Pipe),
                WakeEvent::RingPushed(id) | WakeEvent::RingPopped(id) => (*id, Chan::Ring),
                WakeEvent::ConnAdvanced(id) => (*id, Chan::Conn),
                WakeEvent::Kill(_) => continue,
            };
            let list = match chan {
                Chan::Pipe => self.pipe_waiters.remove(&id),
                Chan::Conn => self.conn_waiters.remove(&id),
                Chan::Ring => self.ring_waiters.remove(&id),
            };
            let Some(list) = list else { continue };
            let mut wake = Vec::new();
            let mut keep = Vec::new();
            for (wpid, wtid) in list {
                let Some(p) = self.procs.get(&wpid) else {
                    continue;
                };
                if p.life != ProcLife::Alive {
                    continue;
                }
                let Some(t) = p.threads.get(&wtid) else {
                    continue;
                };
                if !matches!(t.state, ThreadState::Blocked) {
                    continue;
                }
                let Some(pending) = &t.pending else { continue };
                if Self::wake_match(ev, pending, &p.fds) {
                    wake.push((wpid, wtid));
                } else {
                    keep.push((wpid, wtid));
                }
            }
            for (wpid, wtid) in wake {
                self.make_ready(wpid, wtid, at);
            }
            if !keep.is_empty() {
                let map = match chan {
                    Chan::Pipe => &mut self.pipe_waiters,
                    Chan::Conn => &mut self.conn_waiters,
                    Chan::Ring => &mut self.ring_waiters,
                };
                map.entry(id).or_default().extend(keep);
            }
        }
    }
}

enum ServiceOutcome {
    /// The call completed with this result.
    Done(Result<u64, Errno>),
    /// Block until an event wakes the thread.
    BlockIndefinite(BlockingCall),
    /// Re-try the call at the given simulated time.
    RetryAt(BlockingCall, f64),
}

// ---------------------------------------------------------------------------
// Env implementation
// ---------------------------------------------------------------------------

struct StepEnv<'a, O: MemOs> {
    os: &'a mut O,
    vfs: &'a mut Vfs,
    fds: &'a mut FdTable,
    pid: Pid,
    start: f64,
    ctx: &'a mut Ctx,
    events: &'a mut Vec<WakeEvent>,
}

impl<O: MemOs> StepEnv<'_, O> {
    fn now_inner(&self) -> f64 {
        self.start + self.ctx.total()
    }

    /// Reads `len` user bytes for an outgoing I/O operation.
    fn read_user(&mut self, buf: &Capability, len: u64) -> SysResult<Vec<u8>> {
        let mut data = vec![0u8; len as usize];
        self.os.load(self.ctx, self.pid, buf, &mut data)?;
        Ok(data)
    }
}

impl<O: MemOs> Env for StepEnv<'_, O> {
    fn load(&mut self, cap: &Capability, buf: &mut [u8]) -> SysResult<()> {
        self.os.load(self.ctx, self.pid, cap, buf)
    }

    fn store(&mut self, cap: &Capability, data: &[u8]) -> SysResult<()> {
        self.os.store(self.ctx, self.pid, cap, data)
    }

    fn load_cap(&mut self, cap: &Capability) -> SysResult<Option<Capability>> {
        self.os.load_cap(self.ctx, self.pid, cap)
    }

    fn store_cap(&mut self, cap: &Capability, value: &Capability) -> SysResult<()> {
        self.os.store_cap(self.ctx, self.pid, cap, value)
    }

    fn reg(&self, idx: usize) -> SysResult<Capability> {
        self.os.reg(self.pid, idx)
    }

    fn set_reg(&mut self, idx: usize, cap: Capability) -> SysResult<()> {
        self.os.set_reg(self.pid, idx, cap)
    }

    fn malloc(&mut self, len: u64) -> SysResult<Capability> {
        self.os.malloc(self.ctx, self.pid, len)
    }

    fn mfree(&mut self, cap: &Capability) -> SysResult<()> {
        self.os.mfree(self.ctx, self.pid, cap)
    }

    fn cpu_ops(&mut self, n: u64) {
        self.ctx.user(self.os.cost().cpu_op * n as f64);
    }

    fn cpu_flops(&mut self, n: u64) {
        self.ctx.user(self.os.cost().flop * n as f64);
    }

    fn sys_write(&mut self, fd: Fd, buf: &Capability, len: u64) -> SysResult<u64> {
        charge_syscall(self.os, self.ctx, len);
        let kind = self.fds.get(fd)?.clone();
        match kind {
            FdKind::File { path, offset } => {
                let data = self.read_user(buf, len)?;
                let cost = self.os.cost();
                self.ctx.kernel(
                    cost.fs_op
                        + cost.ramdisk_per_byte * len as f64
                        + self.os.copyio_cost_per_byte() * len as f64,
                );
                let n = self.vfs.write_file(&path, offset, &data)?;
                if let Ok(FdKind::File { offset, .. }) = self.fds.get_mut(fd) {
                    *offset += n;
                }
                Ok(n)
            }
            FdKind::PipeWrite(id) => {
                let data = self.read_user(buf, len)?;
                let cost = self.os.cost();
                self.ctx.kernel(
                    cost.pipe_per_byte * len as f64 + self.os.copyio_cost_per_byte() * len as f64,
                );
                let now = self.now_inner();
                let n = self.vfs.pipe_write(id, &data, now)?;
                self.events.push(WakeEvent::PipeWritten(id));
                Ok(n)
            }
            FdKind::Conn(id) => {
                // Response bytes: charge copy but content is synthetic.
                let cost = self.os.cost();
                self.ctx.kernel(
                    self.os.copyio_cost_per_byte() * len as f64 + cost.pipe_per_byte * len as f64,
                );
                let now = self.now_inner();
                self.vfs.conn_write(id, now)?;
                self.events.push(WakeEvent::ConnAdvanced(id));
                Ok(len)
            }
            _ => Err(Errno::BadFd),
        }
    }

    fn sys_read_nonblock(&mut self, fd: Fd, buf: &Capability, len: u64) -> SysResult<u64> {
        charge_syscall(self.os, self.ctx, len);
        let kind = self.fds.get(fd)?.clone();
        match kind {
            FdKind::PipeRead(id) => match self.vfs.pipe_read(id, len, self.now_inner())? {
                PipeRead::Data(data) => {
                    let n = data.len() as u64;
                    let cost = self.os.cost();
                    self.ctx.kernel(
                        cost.pipe_per_byte * n as f64 + self.os.copyio_cost_per_byte() * n as f64,
                    );
                    if n > 0 {
                        self.os.store(self.ctx, self.pid, buf, &data)?;
                    }
                    Ok(n)
                }
                PipeRead::Eof => Ok(0),
                PipeRead::Empty | PipeRead::NotUntil(_) => Err(Errno::Again),
            },
            FdKind::File { path, offset } => {
                let data = self.vfs.read_file(&path, offset, len)?;
                let n = data.len() as u64;
                let cost = self.os.cost();
                self.ctx.kernel(
                    cost.fs_op
                        + cost.ramdisk_per_byte * n as f64
                        + self.os.copyio_cost_per_byte() * n as f64,
                );
                if n > 0 {
                    self.os.store(self.ctx, self.pid, buf, &data)?;
                    if let Ok(FdKind::File { offset, .. }) = self.fds.get_mut(fd) {
                        *offset += n;
                    }
                }
                Ok(n)
            }
            _ => Err(Errno::BadFd),
        }
    }

    fn sys_open(&mut self, path: &str, create: bool) -> SysResult<Fd> {
        charge_syscall(self.os, self.ctx, 0);
        self.ctx.kernel(self.os.cost().fs_op);
        self.vfs.open_file(path, create)?;
        Ok(self.fds.insert(FdKind::File {
            path: path.to_string(),
            offset: 0,
        }))
    }

    fn sys_close(&mut self, fd: Fd) -> SysResult<()> {
        charge_syscall(self.os, self.ctx, 0);
        let kind = self.fds.remove(fd)?;
        match kind {
            FdKind::PipeRead(id) => {
                self.events.extend(self.vfs.pipe_drop_end(id, false));
            }
            FdKind::PipeWrite(id) => {
                self.events.extend(self.vfs.pipe_drop_end(id, true));
            }
            FdKind::RingProd(id) => {
                self.events.extend(self.vfs.ring_drop_end(id, true));
            }
            FdKind::RingCons(id) => {
                self.events.extend(self.vfs.ring_drop_end(id, false));
            }
            _ => {}
        }
        Ok(())
    }

    fn sys_rename(&mut self, from: &str, to: &str) -> SysResult<()> {
        charge_syscall(self.os, self.ctx, 0);
        self.ctx.kernel(self.os.cost().fs_op);
        self.vfs.rename(from, to)
    }

    fn sys_pipe(&mut self) -> SysResult<(Fd, Fd)> {
        charge_syscall(self.os, self.ctx, 0);
        let id = self.vfs.create_pipe();
        let r = self.fds.insert(FdKind::PipeRead(id));
        let w = self.fds.insert(FdKind::PipeWrite(id));
        Ok((r, w))
    }

    fn sys_shm_open(&mut self, name: &str, len: u64) -> SysResult<Capability> {
        charge_syscall(self.os, self.ctx, 0);
        self.os.shm_open(self.ctx, self.pid, name, len)
    }

    fn sys_mmap_anon(&mut self, len: u64) -> SysResult<Capability> {
        charge_syscall(self.os, self.ctx, 0);
        self.os.mmap_anon(self.ctx, self.pid, len)
    }

    fn sys_kill(&mut self, pid: Pid) -> SysResult<()> {
        charge_syscall(self.os, self.ctx, 0);
        if pid == self.pid {
            return Err(Errno::Inval);
        }
        // Delivered by the machine after this step completes.
        self.events.push(WakeEvent::Kill(pid));
        Ok(())
    }

    fn sys_ring_open(
        &mut self,
        name: &str,
        slots: u64,
        msg_bytes: u64,
        producer: bool,
    ) -> SysResult<(Fd, Capability)> {
        charge_syscall(self.os, self.ctx, 0);
        let (id, created) = self.vfs.ring_register(name, slots, msg_bytes)?;
        // The ring lives in a named shared-memory object: fork's Shm
        // arms refcount-share these frames instead of copying them.
        let shm_name = format!("ring:{name}");
        let window = self.os.shm_open(
            self.ctx,
            self.pid,
            &shm_name,
            ring::ring_bytes(slots, msg_bytes),
        )?;
        if created {
            ring::ring_init(self.os, self.ctx, self.pid, &window, slots, msg_bytes)?;
        } else {
            ring::ring_verify(self.os, self.ctx, self.pid, &window, slots, msg_bytes)?;
        }
        self.vfs.ring_add_end(id, producer);
        let fd = self.fds.insert(if producer {
            FdKind::RingProd(id)
        } else {
            FdKind::RingCons(id)
        });
        // Hand the program a *sealed* view: it cannot dereference the
        // window, only present the capability back to push/pop.
        let sealed = window
            .seal(OType::RING_ENDPOINT, &ring::seal_authority())
            .map_err(|_| Errno::Perm)?;
        Ok((fd, sealed))
    }

    fn sys_ring_try_push(
        &mut self,
        fd: Fd,
        ring_cap: &Capability,
        buf: &Capability,
        len: u64,
    ) -> SysResult<u64> {
        charge_syscall(self.os, self.ctx, len);
        let FdKind::RingProd(id) = self.fds.get(fd)?.clone() else {
            return Err(Errno::BadFd);
        };
        let window = ring_cap
            .unseal(&ring::seal_authority())
            .map_err(|_| Errno::Perm)?;
        let meta = self.vfs.ring_meta(id)?;
        if meta.cons_ends == 0 && meta.ever_cons {
            return Err(Errno::BadFd); // EPIPE
        }
        let data = self.read_user(buf, len)?;
        let now = self.now_inner();
        match ring::ring_push_raw(self.os, self.ctx, self.pid, &window, &data, now)? {
            RawPush::Pushed(seq) => {
                let m = self.vfs.ring_meta_mut(id).expect("ring exists");
                m.pushed += 1;
                RingMeta::mix(&mut m.push_digest, seq, &data);
                self.ctx.counters.ring_msgs += 1;
                self.events.push(WakeEvent::RingPushed(id));
                Ok(len)
            }
            RawPush::Full | RawPush::NotUntil(_) => {
                self.ctx.counters.ring_full_stalls += 1;
                Err(Errno::Again)
            }
        }
    }

    fn sys_ring_try_pop(
        &mut self,
        fd: Fd,
        ring_cap: &Capability,
        buf: &Capability,
    ) -> SysResult<u64> {
        charge_syscall(self.os, self.ctx, 0);
        let FdKind::RingCons(id) = self.fds.get(fd)?.clone() else {
            return Err(Errno::BadFd);
        };
        let window = ring_cap
            .unseal(&ring::seal_authority())
            .map_err(|_| Errno::Perm)?;
        let now = self.now_inner();
        match ring::ring_pop_raw(self.os, self.ctx, self.pid, &window, now)? {
            RawPop::Popped { seq, data } => {
                self.os.store(self.ctx, self.pid, buf, &data)?;
                let m = self.vfs.ring_meta_mut(id).expect("ring exists");
                m.popped += 1;
                RingMeta::mix(&mut m.pop_digest, seq, &data);
                self.events.push(WakeEvent::RingPopped(id));
                Ok(data.len() as u64)
            }
            RawPop::Empty => {
                let meta = self.vfs.ring_meta(id)?;
                if meta.prod_ends == 0 && meta.ever_prod {
                    Ok(RING_EOF)
                } else {
                    Ok(0)
                }
            }
            // Not yet visible at this simulated instant: look empty.
            RawPop::NotUntil(_) => Ok(0),
        }
    }

    fn sys_getpid(&mut self) -> Pid {
        charge_syscall(self.os, self.ctx, 0);
        self.pid
    }

    fn now(&self) -> f64 {
        self.now_inner()
    }
}
