//! Event-driven scheduler primitives: the priority run queue, integer
//! time keys, per-core lane clocks, and explicit blocked states.
//!
//! The [`crate::Machine`] originally picked each step by linearly
//! scanning *every* thread of *every* process for the minimum ready time
//! — O(threads) per step, O(threads²) over a run, which falls over under
//! a 10k-μprocess fork storm. This module provides the data structures
//! for an O(log runnable) engine while keeping the schedule bit-identical
//! to the linear scan (the differential suite in
//! `tests/sched_differential.rs` holds both engines to the same event
//! logs):
//!
//! * [`TimeKey`] — an **integer** ordering key over simulated
//!   nanoseconds, so heap ordering can never be perturbed by
//!   floating-point comparison subtleties over 10k-event timelines;
//! * [`RunQueue`] — a lazy-deletion binary min-heap ordered by
//!   `(time, priority, order)`, reproducing the scan's tie-break
//!   (ascending pid, then tid) at equal timestamps and priorities;
//! * [`Cores`] — per-core simulated clocks backed by
//!   [`ufork_sim::LaneClocks`], the same machinery the parallel fork
//!   walkers use, so whole-machine time remains exactly replayable;
//! * [`BlockedOn`] — why a parked thread is parked, which both documents
//!   the wait graph and lets the machine index pipe/conn waiters for
//!   O(woken) wakeups instead of rescanning every thread.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ufork_abi::Pid;
use ufork_sim::LaneClocks;

/// Which scheduling algorithm drives [`crate::Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEngine {
    /// The original O(threads)-per-step linear scan. Kept as the
    /// reference implementation for the differential suite; produces the
    /// exact schedule the event engine must reproduce.
    Lockstep,
    /// Priority run queue with lazy deletion: O(log runnable) per step.
    /// The default.
    EventDriven,
}

/// Default thread priority. Lower values run first among threads ready
/// at the same simulated instant; in a discrete-event machine priority
/// can only break *ties* in time, never preempt earlier work.
pub const DEFAULT_PRIORITY: u8 = 128;

/// An integer ordering key over a simulated-time nanosecond value.
///
/// IEEE-754 doubles have the property that for non-negative finite
/// values, `a <= b  ⟺  a.to_bits() <= b.to_bits()`: the raw bit pattern
/// is monotone. `TimeKey` exploits this to give the run queue (and the
/// zombie table) a plain `u64` ordering key — integer comparisons, no
/// NaN/total_cmp corner cases inside the heap — **without** quantizing
/// the timestamp. Quantizing (e.g. rounding to whole ns) would collapse
/// sub-ns-distinct events into new ties and diverge from the lockstep
/// engine's schedule; the bit encoding keys every distinct `f64` instant
/// distinctly.
///
/// Negative inputs clamp to 0 (simulated time starts at 0; a negative
/// ready time is a cost-model bug, not a schedulable instant) and NaN
/// maps to `u64::MAX` (sorts last, never first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeKey(pub u64);

impl TimeKey {
    /// Encodes a simulated-time value.
    pub fn from_ns(ns: f64) -> TimeKey {
        if ns.is_nan() {
            return TimeKey(u64::MAX);
        }
        if ns <= 0.0 {
            return TimeKey(0); // also normalizes -0.0
        }
        TimeKey(ns.to_bits())
    }

    /// Decodes back to nanoseconds.
    pub fn as_ns(self) -> f64 {
        if self.0 == u64::MAX {
            return f64::NAN;
        }
        f64::from_bits(self.0)
    }
}

/// What an indefinitely blocked thread is waiting for.
///
/// `BlockIndefinite` used to park a thread with nothing but its pending
/// call; the wake path then had to rescan every thread against every
/// event. Recording the wait explicitly lets the machine index waiters
/// by pipe/connection id and wake exactly the affected threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockedOn {
    /// Reading an empty pipe with writers still open, or writing a full
    /// one with readers still open.
    Pipe(usize),
    /// Pushing onto a full ring, or popping an empty one with producer
    /// ends still open.
    Ring(usize),
    /// Reading a synthetic connection (defensive: the traffic model
    /// currently always yields a timed retry instead).
    Conn(usize),
    /// `wait()` with live, un-exited children.
    Wait,
    /// Joining a running thread (the target tid).
    Join(u32),
    /// Awaiting in-kernel fault resolution. Pipelined fork runs a child
    /// before its pages finish copying, but its demand-priority faults
    /// resolve *inline* (the faulting access copies the chunk itself and
    /// charges its own context — see `ufork::pipeline`), so even there
    /// nothing parks here; the variant remains the defensive default for
    /// blocking calls with no other classification.
    Fault,
}

/// Base bit for demoted run-queue orders: a thread that overran its time
/// slice is requeued behind every normally-ordered thread ready at the
/// same instant (round-robin at equal timestamps).
const DEMOTED: u64 = 1 << 63;

/// One run-queue entry. Ordering is lexicographic over the declared
/// fields: ready time first, then priority, then `order` — which is
/// `pid << 32 | tid` for normal entries, reproducing the lockstep scan's
/// tie-break (the scan iterates pids then tids ascending and keeps the
/// first minimum).
///
/// Entries are never removed eagerly. A stale entry (its thread ran,
/// blocked, moved, or died since the push) is detected on pop by
/// comparing `gen` against the thread's current ready-generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct QEntry {
    /// Integer-encoded ready time (primary key).
    pub time: TimeKey,
    /// Priority (secondary key; lower runs first).
    pub prio: u8,
    /// Tie-break order (`pid << 32 | tid`, or a demoted sequence).
    pub order: u64,
    /// Ready-generation of the thread when this entry was pushed.
    pub gen: u64,
    /// Target process.
    pub pid: Pid,
    /// Target thread.
    pub tid: u32,
}

impl QEntry {
    /// A normally-ordered entry.
    pub fn new(at: f64, prio: u8, pid: Pid, tid: u32, gen: u64) -> QEntry {
        QEntry {
            time: TimeKey::from_ns(at),
            prio,
            order: (u64::from(pid.0) << 32) | u64::from(tid),
            gen,
            pid,
            tid,
        }
    }
}

/// The lazy-deletion run queue.
///
/// A disabled queue (lockstep engine) ignores pushes, so the machine can
/// route every ready-transition through one helper without the legacy
/// engine paying for or accumulating heap entries.
pub(crate) struct RunQueue {
    heap: BinaryHeap<Reverse<QEntry>>,
    enabled: bool,
    demote_seq: u64,
}

impl RunQueue {
    /// Creates the queue; `enabled` iff the event engine is selected.
    pub fn new(enabled: bool) -> RunQueue {
        RunQueue {
            heap: BinaryHeap::new(),
            enabled,
            demote_seq: 0,
        }
    }

    /// Pushes an entry (no-op when disabled).
    pub fn push(&mut self, entry: QEntry) {
        if self.enabled {
            self.heap.push(Reverse(entry));
        }
    }

    /// Builds a slice-overrun entry: same ready time, but ordered after
    /// every normal entry at that time.
    pub fn demoted(&mut self, at: f64, prio: u8, pid: Pid, tid: u32, gen: u64) -> QEntry {
        self.demote_seq += 1;
        QEntry {
            time: TimeKey::from_ns(at),
            prio,
            order: DEMOTED | self.demote_seq,
            gen,
            pid,
            tid,
        }
    }

    /// Pops the minimum entry (which may be stale — the caller validates
    /// against the thread's current state and generation).
    pub fn pop(&mut self) -> Option<QEntry> {
        self.heap.pop().map(|r| r.0)
    }

    /// Entries currently queued, stale ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Per-core simulated clocks plus last-scheduled bookkeeping, backed by
/// the same [`LaneClocks`] the parallel fork walkers charge — one
/// time-accounting mechanism for the whole machine, so a multi-core run
/// replays exactly.
pub(crate) struct Cores {
    clocks: LaneClocks,
    last: Vec<Option<(Pid, u32)>>,
}

impl Cores {
    /// `n` cores (clamped to at least 1), all at time zero.
    pub fn new(n: usize) -> Cores {
        let n = n.max(1);
        Cores {
            clocks: LaneClocks::new(n),
            last: vec![None; n],
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.clocks.workers()
    }

    /// Core `i`'s current simulated time.
    pub fn now(&self, i: usize) -> f64 {
        self.clocks.lane(i)
    }

    /// Advances core `i` to a step's end time.
    pub fn advance_to(&mut self, i: usize, t: f64) {
        self.clocks.advance_to(i, t);
    }

    /// The thread core `i` last ran (context-switch accounting).
    pub fn last(&self, i: usize) -> Option<(Pid, u32)> {
        self.last[i]
    }

    /// Records that core `i` just ran `(pid, tid)`.
    pub fn note_ran(&mut self, i: usize, pid: Pid, tid: u32) {
        self.last[i] = Some((pid, tid));
    }

    /// Latest time across cores (machine "now").
    pub fn max_now(&self) -> f64 {
        self.clocks.elapsed()
    }

    /// Earliest time across cores (big-kernel-lock pruning horizon).
    pub fn min_now(&self) -> f64 {
        (0..self.clocks.workers())
            .map(|i| self.clocks.lane(i))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_key_is_monotone_over_nonnegative_ns() {
        let samples = [
            0.0,
            1e-300,
            0.5,
            1.0,
            1.0 + f64::EPSILON,
            54_321.75,
            1e9,
            1e15,
            f64::MAX,
        ];
        for w in samples.windows(2) {
            assert!(
                TimeKey::from_ns(w[0]) < TimeKey::from_ns(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // Adjacent representable doubles stay distinct (no quantization).
        let t = 1e9_f64;
        let next = f64::from_bits(t.to_bits() + 1);
        assert!(TimeKey::from_ns(t) < TimeKey::from_ns(next));
        assert_eq!(TimeKey::from_ns(t).as_ns(), t);
    }

    #[test]
    fn time_key_clamps_negative_and_nan() {
        assert_eq!(TimeKey::from_ns(-5.0), TimeKey(0));
        assert_eq!(TimeKey::from_ns(-0.0), TimeKey(0));
        assert_eq!(TimeKey::from_ns(0.0), TimeKey(0));
        assert_eq!(TimeKey::from_ns(f64::NAN), TimeKey(u64::MAX));
        // NaN sorts after every real instant.
        assert!(TimeKey::from_ns(f64::MAX) < TimeKey::from_ns(f64::NAN));
    }

    #[test]
    fn entries_order_by_time_then_prio_then_pid_tid() {
        let early = QEntry::new(10.0, 128, Pid(9), 0, 1);
        let late = QEntry::new(20.0, 0, Pid(1), 0, 1);
        assert!(early < late, "time dominates priority");

        let hi = QEntry::new(10.0, 10, Pid(9), 0, 1);
        let lo = QEntry::new(10.0, 200, Pid(1), 0, 1);
        assert!(hi < lo, "at equal time, lower prio value runs first");

        let p1 = QEntry::new(10.0, 128, Pid(1), 3, 1);
        let p2 = QEntry::new(10.0, 128, Pid(2), 0, 1);
        assert!(p1 < p2, "at equal time+prio, ascending pid");
        let t0 = QEntry::new(10.0, 128, Pid(1), 0, 1);
        assert!(t0 < p1, "then ascending tid");
    }

    #[test]
    fn run_queue_pops_in_key_order_and_demotes_slice_overruns() {
        let mut q = RunQueue::new(true);
        q.push(QEntry::new(30.0, 128, Pid(1), 0, 1));
        q.push(QEntry::new(10.0, 128, Pid(2), 0, 1));
        let d = q.demoted(10.0, 128, Pid(1), 1, 1);
        q.push(d);
        q.push(QEntry::new(10.0, 128, Pid(7), 5, 1));
        assert_eq!(q.len(), 4);
        // t=10 normals first (pid asc), then the demoted one, then t=30.
        assert_eq!(q.pop().unwrap().pid, Pid(2));
        assert_eq!(q.pop().unwrap().pid, Pid(7));
        let got = q.pop().unwrap();
        assert_eq!((got.pid, got.tid), (Pid(1), 1));
        assert_eq!(q.pop().unwrap().time, TimeKey::from_ns(30.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn disabled_queue_ignores_pushes() {
        let mut q = RunQueue::new(false);
        q.push(QEntry::new(1.0, 128, Pid(1), 0, 1));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cores_track_lanes_and_last_ran() {
        let mut c = Cores::new(2);
        assert_eq!(c.len(), 2);
        c.advance_to(1, 500.25);
        c.note_ran(1, Pid(3), 0);
        assert_eq!(c.now(1), 500.25);
        assert_eq!(c.now(0), 0.0);
        assert_eq!(c.max_now(), 500.25);
        assert_eq!(c.min_now(), 0.0);
        assert_eq!(c.last(1), Some((Pid(3), 0)));
        assert_eq!(c.last(0), None);
        // Zero clamps to one core.
        assert_eq!(Cores::new(0).len(), 1);
    }
}
