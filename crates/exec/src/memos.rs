//! The [`MemOs`] trait: where the three compared systems differ.

use ufork_abi::{ImageSpec, IsolationLevel, Pid, SysResult};
use ufork_cheri::Capability;
use ufork_mem::MemStats;
use ufork_sim::CostModel;

use crate::ctx::Ctx;

/// The memory-and-process backend of a simulated operating system.
///
/// Implemented by:
/// * `ufork` — the paper's system: single address space, capability
///   relocation, CoW/CoA/CoPA, sealed-capability syscalls;
/// * `ufork_baselines::MonoOs` — CheriBSD-like: per-process page tables,
///   classic CoW fork without relocation, trap syscalls, TLB flushes on
///   context switch;
/// * `ufork_baselines::NepheleOs` — VM cloning: fork duplicates the whole
///   guest (kernel + application) through the hypervisor.
///
/// All operations charge simulated time to the [`Ctx`] and update its
/// counters. Memory accesses must perform the same checks the respective
/// real system would (capability bounds/permissions, page permissions) and
/// resolve transparent faults internally.
pub trait MemOs {
    /// The hardware cost model in effect.
    fn cost(&self) -> &CostModel;

    /// Creates the initial memory of process `pid` from an image
    /// description. Registers are initialized with the image's root
    /// capabilities (register 0 = heap/data root by convention).
    fn spawn(&mut self, ctx: &mut Ctx, pid: Pid, image: &ImageSpec) -> SysResult<()>;

    /// Forks `parent`'s memory into new process `child`, duplicating
    /// registers (relocated, for μFork) and charging the system's full
    /// fork cost.
    fn fork(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()>;

    /// Releases all memory of `pid`.
    fn destroy(&mut self, ctx: &mut Ctx, pid: Pid);

    /// Loads bytes at `cap`'s cursor on behalf of `pid`.
    fn load(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability, buf: &mut [u8]) -> SysResult<()>;

    /// Stores bytes at `cap`'s cursor on behalf of `pid`.
    fn store(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability, data: &[u8]) -> SysResult<()>;

    /// Loads a capability (tag-checked) at the cursor.
    fn load_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
    ) -> SysResult<Option<Capability>>;

    /// Stores a capability at the cursor.
    fn store_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        value: &Capability,
    ) -> SysResult<()>;

    /// Allocates from `pid`'s in-process heap.
    fn malloc(&mut self, ctx: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability>;

    /// Frees a heap allocation.
    fn mfree(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability) -> SysResult<()>;

    /// Reads capability register `idx` of `pid`.
    fn reg(&self, pid: Pid, idx: usize) -> SysResult<Capability>;

    /// Writes capability register `idx` of `pid`.
    fn set_reg(&mut self, pid: Pid, idx: usize, cap: Capability) -> SysResult<()>;

    /// Maps the named shared-memory object (creating it at `len` bytes if
    /// new) into `pid`, returning a capability to the mapping.
    fn shm_open(&mut self, ctx: &mut Ctx, pid: Pid, name: &str, len: u64) -> SysResult<Capability>;

    /// Maps `len` bytes of fresh anonymous memory into `pid`'s mmap
    /// window, returning a capability confined to the process.
    fn mmap_anon(&mut self, ctx: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability>;

    // ---- pipelined fork (background copy) -------------------------------

    /// Pages of `pid`'s fork still being copied behind a committed
    /// pipelined fork. Zero for systems without one (the default) and
    /// once the background window has drained. The executive keeps a
    /// child's copy-engine μtask alive while this is non-zero.
    fn pipeline_pending(&self, _pid: Pid) -> u64 {
        0
    }

    /// Advances `pid`'s background copy by one chunk, charging the
    /// chunk's work to `ctx`. Returns `Ok(true)` if a chunk was copied,
    /// `Ok(false)` when there is no pending background work (the
    /// default for systems without pipelined fork).
    fn pipeline_step(&mut self, _ctx: &mut Ctx, _pid: Pid) -> SysResult<bool> {
        Ok(false)
    }

    // ---- memory-pressure survival tier ----------------------------------

    /// True when the background reclaim daemon has useful work queued
    /// (allocator pressure engaged and dirty pooled frames awaiting a
    /// scrub). The executive keeps a reclaim μtask armed while this
    /// holds. Always false for systems without a daemon (the default).
    fn reclaim_pending(&self) -> bool {
        false
    }

    /// Runs one bounded background-reclaim pass, scrubbing recycled
    /// frames into the clean-frame magazines and charging the zeroing
    /// work to `ctx`. Returns how many frames were scrubbed; `Ok(0)`
    /// means no work remained (the default for systems without a
    /// daemon) and the executive disarms the μtask.
    fn reclaim_step(&mut self, _ctx: &mut Ctx) -> SysResult<u64> {
        Ok(0)
    }

    /// Frames currently resident for `pid` — the executive's OOM victim
    /// selection ranks candidates by this (largest first). Systems
    /// without per-process residency visibility may return 0; selection
    /// then falls back to its age/depth tie-breakers.
    fn resident_pages(&self, _pid: Pid) -> u64 {
        0
    }

    /// Releases `pid`'s memory as an OOM reap. Kernels with a
    /// transactional teardown override this with a journaled
    /// implementation (abortable mid-sweep, leak-free either way); the
    /// default simply delegates to [`MemOs::destroy`], which must then
    /// be a no-op when the executive's exit path calls it again.
    fn oom_reap(&mut self, ctx: &mut Ctx, pid: Pid) -> SysResult<()> {
        self.destroy(ctx, pid);
        Ok(())
    }

    // ---- cost / feature profile ----------------------------------------

    /// Kernel entry + exit cost for one syscall.
    fn syscall_entry_cost(&self) -> f64;

    /// True if syscalls trap (monolithic); false for sealed-capability
    /// entry (μFork).
    fn syscall_is_trap(&self) -> bool;

    /// Context-switch cost from `from` to `to` (cross-address-space
    /// switches include TLB flushes on the monolithic OS).
    fn ctx_switch_cost(&self, from: Pid, to: Pid) -> f64;

    /// True when kernel execution serializes on a big kernel lock
    /// (Unikraft-style SMP, paper §4.5).
    fn big_kernel_lock(&self) -> bool;

    /// The deployment's isolation level.
    fn isolation(&self) -> IsolationLevel;

    /// Per-byte cost of moving I/O data between user and kernel. The
    /// monolithic kernel always pays copyin/copyout; μFork pays it only
    /// under TOCTTOU protection (otherwise the single address space lets
    /// the kernel read user memory in place).
    fn copyio_cost_per_byte(&self) -> f64;

    // ---- accounting ------------------------------------------------------

    /// Memory statistics of one process.
    fn mem_stats(&self, pid: Pid) -> MemStats;

    /// Total physical frames currently allocated system-wide.
    fn allocated_frames(&self) -> u32;

    /// High-water mark of allocated frames (for "memory consumed by a
    /// fork" deltas).
    fn peak_frames(&self) -> u32;

    /// Verifies internal isolation invariants for `pid` (used by tests):
    /// no capability reachable by the process may exceed its own memory.
    /// Returns the number of violations found.
    fn audit_isolation(&self, pid: Pid) -> usize;
}

/// Blanket helper: charge the per-syscall overhead for one kernel entry,
/// honouring the isolation level.
pub fn charge_syscall<O: MemOs + ?Sized>(os: &O, ctx: &mut Ctx, buffer_bytes: u64) {
    let cost = os.cost();
    ctx.kernel(os.syscall_entry_cost());
    ctx.counters.syscalls += 1;
    if os.syscall_is_trap() {
        ctx.counters.traps += 1;
        ctx.instant("gate/trap");
    } else {
        ctx.counters.sealed_entries += 1;
        ctx.instant("gate/enter");
    }
    let iso = os.isolation();
    if iso.validates_syscalls() {
        ctx.kernel(cost.syscall_validate);
    }
    if iso.tocttou_protection() && buffer_bytes > 0 {
        ctx.kernel(cost.tocttou_fixed + cost.copyio_per_byte * buffer_bytes as f64);
        ctx.counters.tocttou_bytes += buffer_bytes;
    }
}
