//! The OS-neutral executive of the μFork reproduction.
//!
//! The evaluation compares three operating systems — μFork, a monolithic
//! CheriBSD-like kernel, and a Nephele-like VM-cloning unikernel — running
//! *identical workload code*. To keep the comparison controlled (as the
//! paper's shared Morello testbed does), everything that is not the point
//! of comparison lives here, shared by all three:
//!
//! * a discrete-event, multi-core **scheduler** driving [`ufork_abi::Program`]
//!   state machines in simulated time, with optional big-kernel-lock
//!   serialization (Unikraft's SMP model, paper §4.5);
//! * a **VFS** with ram-disk files, pipes, and synthetic network
//!   listeners/connections (the wrk-style traffic the Nginx experiment
//!   needs);
//! * per-process **file-descriptor tables** duplicated across fork;
//! * the [`MemOs`] trait — the seam where the three systems differ:
//!   process memory creation, `fork`, loads/stores, and the cost profile
//!   of kernel entry and context switches.
//!
//! The entry point is [`Machine`], which owns a `MemOs` implementation and
//! runs programs to completion while accounting simulated time and
//! operation counts.

mod ctx;
mod machine;
mod memos;
pub mod ring;
mod sched;
mod vfs;

pub use ctx::Ctx;
pub use machine::{
    ExitEvent, ForkEvent, Machine, MachineConfig, OomEvent, PipelineEvent, MAIN_TID,
};
pub use memos::MemOs;
pub use sched::{BlockedOn, SchedEngine, TimeKey, DEFAULT_PRIORITY};
pub use vfs::{
    ConnTemplate, FdKind, FdTable, PipeRead, RingMeta, RingSnapshot, Vfs, WakeEvent, PIPE_CAPACITY,
};
