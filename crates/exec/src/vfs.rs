//! Ram-disk files, pipes, synthetic network connections, and fd tables.

use std::collections::BTreeMap;

use ufork_abi::{Errno, Fd, SysResult};

/// Ram-disk contents as `(path, bytes)` pairs in path order.
pub type FileSnapshot = Vec<(String, Vec<u8>)>;
/// Residual unread bytes of every live pipe, as `(pipe id, bytes)`.
pub type PipeSnapshot = Vec<(usize, Vec<u8>)>;

/// What a file descriptor refers to.
#[derive(Clone, Debug)]
pub enum FdKind {
    /// A ram-disk file with a private offset.
    File {
        /// Path in the ram-disk namespace.
        path: String,
        /// Current read/write offset.
        offset: u64,
    },
    /// Read end of a pipe.
    PipeRead(usize),
    /// Write end of a pipe.
    PipeWrite(usize),
    /// A listening socket fed by a synthetic traffic source.
    Listener(usize),
    /// An accepted connection.
    Conn(usize),
}

/// A per-process file-descriptor table.
///
/// Duplicated on fork, as POSIX requires ("relevant system resources are
/// also duplicated ... e.g., open file and message queue descriptors",
/// paper §3.5).
#[derive(Clone, Debug, Default)]
pub struct FdTable {
    entries: BTreeMap<i32, FdKind>,
    next: i32,
}

impl FdTable {
    /// An empty table (fd numbering starts at 3, as 0–2 are std streams).
    pub fn new() -> FdTable {
        FdTable {
            entries: BTreeMap::new(),
            next: 3,
        }
    }

    /// Inserts a new descriptor.
    pub fn insert(&mut self, kind: FdKind) -> Fd {
        let fd = self.next;
        self.next += 1;
        self.entries.insert(fd, kind);
        Fd(fd)
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> SysResult<&FdKind> {
        self.entries.get(&fd.0).ok_or(Errno::BadFd)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: Fd) -> SysResult<&mut FdKind> {
        self.entries.get_mut(&fd.0).ok_or(Errno::BadFd)
    }

    /// Removes a descriptor, returning its kind.
    pub fn remove(&mut self, fd: Fd) -> SysResult<FdKind> {
        self.entries.remove(&fd.0).ok_or(Errno::BadFd)
    }

    /// Iterates all entries.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FdKind)> {
        self.entries.iter().map(|(k, v)| (Fd(*k), v))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A side effect of an I/O operation that may wake blocked threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WakeEvent {
    /// Data written to pipe `id` at the given simulated time.
    PipeWritten(usize),
    /// All write ends of pipe `id` closed (readers see EOF).
    PipeHangup(usize),
    /// A response was written on connection `id` (its next request is now
    /// scheduled).
    ConnAdvanced(usize),
    /// A SIGKILL-style signal was sent to the process.
    Kill(ufork_abi::Pid),
}

#[derive(Debug, Default)]
struct FileNode {
    data: Vec<u8>,
}

#[derive(Debug)]
struct Pipe {
    /// Buffered chunks with the simulated time they became available.
    chunks: std::collections::VecDeque<(Vec<u8>, f64)>,
    read_ends: u32,
    write_ends: u32,
}

/// Parameters of the synthetic connections a [`Vfs`] listener produces —
/// the wrk-style closed-loop traffic of the Nginx experiment.
#[derive(Clone, Copy, Debug)]
pub struct ConnTemplate {
    /// Requests sent per connection before it closes.
    pub requests_per_conn: u32,
    /// Request size in bytes.
    pub req_bytes: u32,
    /// Think/network gap between a response and the next request (ns).
    pub think_ns: f64,
}

#[derive(Debug)]
struct Listener {
    template: ConnTemplate,
    /// Connections still to be offered (effectively infinite for
    /// saturation benchmarks).
    remaining_conns: u64,
}

#[derive(Debug)]
struct Conn {
    template: ConnTemplate,
    /// Requests left to serve on this connection.
    remaining: u32,
    /// When the next request is available to read.
    next_req_at: f64,
    /// A request has been read and awaits its response.
    in_flight: bool,
    /// Requests fully served on this connection.
    pub served: u64,
}

/// The shared file system / network namespace.
#[derive(Debug, Default)]
pub struct Vfs {
    files: BTreeMap<String, FileNode>,
    pipes: Vec<Option<Pipe>>,
    listeners: Vec<Listener>,
    conns: Vec<Conn>,
    /// Total requests served across all connections (throughput metric).
    pub total_served: u64,
}

impl Vfs {
    /// An empty namespace.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    // ---- files ---------------------------------------------------------

    /// Opens a file, creating it when `create` is set.
    pub fn open_file(&mut self, path: &str, create: bool) -> SysResult<()> {
        if !self.files.contains_key(path) {
            if !create {
                return Err(Errno::NoEnt);
            }
            self.files.insert(path.to_string(), FileNode::default());
        }
        Ok(())
    }

    /// Writes at `offset`, extending the file as needed. Returns bytes
    /// written.
    pub fn write_file(&mut self, path: &str, offset: u64, data: &[u8]) -> SysResult<u64> {
        let node = self.files.get_mut(path).ok_or(Errno::NoEnt)?;
        let end = offset as usize + data.len();
        if node.data.len() < end {
            node.data.resize(end, 0);
        }
        node.data[offset as usize..end].copy_from_slice(data);
        Ok(data.len() as u64)
    }

    /// Reads up to `len` bytes at `offset`. Returns the bytes (possibly
    /// fewer than `len` at end of file).
    pub fn read_file(&self, path: &str, offset: u64, len: u64) -> SysResult<Vec<u8>> {
        let node = self.files.get(path).ok_or(Errno::NoEnt)?;
        let start = (offset as usize).min(node.data.len());
        let end = (start + len as usize).min(node.data.len());
        Ok(node.data[start..end].to_vec())
    }

    /// Atomically renames a file.
    pub fn rename(&mut self, from: &str, to: &str) -> SysResult<()> {
        let node = self.files.remove(from).ok_or(Errno::NoEnt)?;
        self.files.insert(to.to_string(), node);
        Ok(())
    }

    /// Full contents of a file (harness-side verification).
    pub fn file_contents(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|n| n.data.as_slice())
    }

    /// File size in bytes.
    pub fn file_len(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|n| n.data.len() as u64)
    }

    // ---- pipes -----------------------------------------------------------

    /// Creates a pipe, returning its id (one read end + one write end
    /// outstanding).
    pub fn create_pipe(&mut self) -> usize {
        let pipe = Pipe {
            chunks: std::collections::VecDeque::new(),
            read_ends: 1,
            write_ends: 1,
        };
        if let Some(idx) = self.pipes.iter().position(Option::is_none) {
            self.pipes[idx] = Some(pipe);
            idx
        } else {
            self.pipes.push(Some(pipe));
            self.pipes.len() - 1
        }
    }

    fn pipe_mut(&mut self, id: usize) -> SysResult<&mut Pipe> {
        self.pipes
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or(Errno::BadFd)
    }

    /// Adds a sharer to one end (fd duplication on fork).
    pub fn pipe_add_end(&mut self, id: usize, write_end: bool) {
        if let Ok(p) = self.pipe_mut(id) {
            if write_end {
                p.write_ends += 1;
            } else {
                p.read_ends += 1;
            }
        }
    }

    /// Drops one end; returns a hangup event when the last write end
    /// closes. The pipe is freed when all ends are gone.
    pub fn pipe_drop_end(&mut self, id: usize, write_end: bool) -> Option<WakeEvent> {
        let Ok(p) = self.pipe_mut(id) else {
            return None;
        };
        let mut event = None;
        if write_end {
            p.write_ends -= 1;
            if p.write_ends == 0 {
                event = Some(WakeEvent::PipeHangup(id));
            }
        } else {
            p.read_ends -= 1;
        }
        if p.read_ends == 0 && p.write_ends == 0 {
            self.pipes[id] = None;
        }
        event
    }

    /// Appends to a pipe at simulated time `now`.
    pub fn pipe_write(&mut self, id: usize, data: &[u8], now: f64) -> SysResult<u64> {
        let p = self.pipe_mut(id)?;
        if p.read_ends == 0 {
            return Err(Errno::BadFd); // EPIPE, near enough
        }
        p.chunks.push_back((data.to_vec(), now));
        Ok(data.len() as u64)
    }

    /// Attempts to read at simulated time `now`.
    ///
    /// Data written at a later simulated time (by a step that executed
    /// earlier in host order) is not yet visible.
    pub fn pipe_read(&mut self, id: usize, len: u64, now: f64) -> SysResult<PipeRead> {
        let p = self.pipe_mut(id)?;
        match p.chunks.front() {
            None => {
                if p.write_ends == 0 {
                    Ok(PipeRead::Eof)
                } else {
                    Ok(PipeRead::Empty)
                }
            }
            Some((_, t)) if *t > now + 1e-9 => Ok(PipeRead::NotUntil(*t)),
            Some(_) => {
                let mut out = Vec::new();
                while out.len() < len as usize {
                    let Some((chunk, t)) = p.chunks.front_mut() else {
                        break;
                    };
                    if *t > now + 1e-9 {
                        break;
                    }
                    let take = (len as usize - out.len()).min(chunk.len());
                    out.extend(chunk.drain(..take));
                    if chunk.is_empty() {
                        p.chunks.pop_front();
                    }
                }
                Ok(PipeRead::Data(out))
            }
        }
    }

    // ---- listeners & connections -------------------------------------------

    /// Installs a listener producing `conns` connections from `template`.
    /// Returns the listener id.
    pub fn create_listener(&mut self, template: ConnTemplate, conns: u64) -> usize {
        self.listeners.push(Listener {
            template,
            remaining_conns: conns,
        });
        self.listeners.len() - 1
    }

    /// Accepts a connection from listener `id` at time `now`.
    ///
    /// Returns the new connection id, or `None` when the source is
    /// exhausted.
    pub fn accept(&mut self, id: usize, now: f64) -> SysResult<Option<usize>> {
        let l = self.listeners.get_mut(id).ok_or(Errno::BadFd)?;
        if l.remaining_conns == 0 {
            return Ok(None);
        }
        l.remaining_conns -= 1;
        let template = l.template;
        self.conns.push(Conn {
            template,
            remaining: template.requests_per_conn,
            next_req_at: now,
            in_flight: false,
            served: 0,
        });
        Ok(Some(self.conns.len() - 1))
    }

    /// Attempts to read the next request from connection `id` at `now`.
    ///
    /// * `Ok(Ready(bytes))` — a request is available;
    /// * `Ok(Eof)` — the connection is done;
    /// * `Ok(NotUntil(t))` — block until simulated time `t`.
    pub fn conn_read(&mut self, id: usize, now: f64) -> SysResult<ConnRead> {
        let c = self.conns.get_mut(id).ok_or(Errno::BadFd)?;
        if c.remaining == 0 {
            return Ok(ConnRead::Eof);
        }
        if c.in_flight {
            // Protocol misuse: a second read before responding.
            return Err(Errno::Inval);
        }
        if now + 1e-9 < c.next_req_at {
            return Ok(ConnRead::NotUntil(c.next_req_at));
        }
        c.in_flight = true;
        Ok(ConnRead::Ready(c.template.req_bytes as u64))
    }

    /// Writes the response for the in-flight request at `now`.
    pub fn conn_write(&mut self, id: usize, now: f64) -> SysResult<u64> {
        let c = self.conns.get_mut(id).ok_or(Errno::BadFd)?;
        if !c.in_flight {
            return Err(Errno::Inval);
        }
        c.in_flight = false;
        c.remaining -= 1;
        c.served += 1;
        self.total_served += 1;
        c.next_req_at = now + c.template.think_ns;
        Ok(0)
    }

    /// Requests served on one connection.
    pub fn conn_served(&self, id: usize) -> u64 {
        self.conns.get(id).map_or(0, |c| c.served)
    }

    /// Deterministic snapshot of externally observable state: every file
    /// as `(path, contents)` in path order, plus the residual (unread)
    /// bytes of every live pipe in id order. The differential scheduler
    /// suite compares this across engines — two schedules are only
    /// equivalent if they leave the *same* bytes behind.
    pub fn state_snapshot(&self) -> (FileSnapshot, PipeSnapshot) {
        let files = self
            .files
            .iter()
            .map(|(p, n)| (p.clone(), n.data.clone()))
            .collect();
        let pipes = self
            .pipes
            .iter()
            .enumerate()
            .filter_map(|(id, p)| {
                p.as_ref().map(|p| {
                    let residue: Vec<u8> = p
                        .chunks
                        .iter()
                        .flat_map(|(bytes, _)| bytes.iter().copied())
                        .collect();
                    (id, residue)
                })
            })
            .collect();
        (files, pipes)
    }
}

/// Result of [`Vfs::pipe_read`].
#[derive(Clone, Debug, PartialEq)]
pub enum PipeRead {
    /// Bytes available now.
    Data(Vec<u8>),
    /// Writers remain but nothing is readable yet.
    Empty,
    /// Data exists but only from simulated time `t` onwards.
    NotUntil(f64),
    /// All writers closed and the buffer is drained.
    Eof,
}

/// Result of [`Vfs::conn_read`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConnRead {
    /// A request of this many bytes is ready.
    Ready(u64),
    /// No more requests on this connection.
    Eof,
    /// Block until the given simulated time.
    NotUntil(f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_insert_get_remove() {
        let mut t = FdTable::new();
        let fd = t.insert(FdKind::PipeRead(0));
        assert_eq!(fd, Fd(3));
        assert!(matches!(t.get(fd), Ok(FdKind::PipeRead(0))));
        assert!(matches!(t.remove(fd), Ok(FdKind::PipeRead(0))));
        assert_eq!(t.get(fd).unwrap_err(), Errno::BadFd);
    }

    #[test]
    fn file_write_read_rename() {
        let mut v = Vfs::new();
        assert_eq!(v.open_file("a", false).unwrap_err(), Errno::NoEnt);
        v.open_file("a", true).unwrap();
        v.write_file("a", 0, b"hello").unwrap();
        v.write_file("a", 5, b" world").unwrap();
        assert_eq!(v.read_file("a", 0, 100).unwrap(), b"hello world");
        v.rename("a", "b").unwrap();
        assert!(v.file_contents("a").is_none());
        assert_eq!(v.file_len("b"), Some(11));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut v = Vfs::new();
        v.open_file("f", true).unwrap();
        v.write_file("f", 4, b"x").unwrap();
        assert_eq!(v.read_file("f", 0, 5).unwrap(), vec![0, 0, 0, 0, b'x']);
    }

    #[test]
    fn pipe_basic_flow() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        assert_eq!(v.pipe_read(p, 10, 0.0).unwrap(), PipeRead::Empty);
        v.pipe_write(p, b"abc", 5.0).unwrap();
        // Reading "before" the write sees nothing yet.
        assert_eq!(v.pipe_read(p, 2, 1.0).unwrap(), PipeRead::NotUntil(5.0));
        assert_eq!(
            v.pipe_read(p, 2, 5.0).unwrap(),
            PipeRead::Data(b"ab".to_vec())
        );
        assert_eq!(
            v.pipe_read(p, 2, 5.0).unwrap(),
            PipeRead::Data(b"c".to_vec())
        );
        assert_eq!(v.pipe_read(p, 2, 5.0).unwrap(), PipeRead::Empty);
    }

    #[test]
    fn pipe_read_stops_at_future_chunk() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        v.pipe_write(p, b"ab", 1.0).unwrap();
        v.pipe_write(p, b"cd", 9.0).unwrap();
        // At t=2 only the first chunk is visible.
        assert_eq!(
            v.pipe_read(p, 10, 2.0).unwrap(),
            PipeRead::Data(b"ab".to_vec())
        );
        assert_eq!(v.pipe_read(p, 10, 2.0).unwrap(), PipeRead::NotUntil(9.0));
        assert_eq!(
            v.pipe_read(p, 10, 9.0).unwrap(),
            PipeRead::Data(b"cd".to_vec())
        );
    }

    #[test]
    fn pipe_eof_and_free() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        v.pipe_write(p, b"z", 1.0).unwrap();
        let ev = v.pipe_drop_end(p, true);
        assert_eq!(ev, Some(WakeEvent::PipeHangup(p)));
        // Buffered data still readable, then EOF.
        assert_eq!(
            v.pipe_read(p, 4, 2.0).unwrap(),
            PipeRead::Data(b"z".to_vec())
        );
        assert_eq!(v.pipe_read(p, 4, 2.0).unwrap(), PipeRead::Eof);
        // Dropping the read end frees the slot for reuse.
        assert_eq!(v.pipe_drop_end(p, false), None);
        let q = v.create_pipe();
        assert_eq!(q, p);
    }

    #[test]
    fn write_to_readerless_pipe_fails() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        v.pipe_drop_end(p, false);
        assert_eq!(v.pipe_write(p, b"x", 0.0).unwrap_err(), Errno::BadFd);
    }

    #[test]
    fn conn_request_cycle() {
        let mut v = Vfs::new();
        let t = ConnTemplate {
            requests_per_conn: 2,
            req_bytes: 100,
            think_ns: 50.0,
        };
        let l = v.create_listener(t, 1);
        let c = v.accept(l, 10.0).unwrap().unwrap();
        assert_eq!(v.accept(l, 10.0).unwrap(), None); // exhausted
        assert_eq!(v.conn_read(c, 10.0).unwrap(), ConnRead::Ready(100));
        // Double read before response is a protocol error.
        assert_eq!(v.conn_read(c, 10.0).unwrap_err(), Errno::Inval);
        v.conn_write(c, 20.0).unwrap();
        // Next request arrives after the think gap.
        assert_eq!(v.conn_read(c, 21.0).unwrap(), ConnRead::NotUntil(70.0));
        assert_eq!(v.conn_read(c, 70.0).unwrap(), ConnRead::Ready(100));
        v.conn_write(c, 75.0).unwrap();
        assert_eq!(v.conn_read(c, 200.0).unwrap(), ConnRead::Eof);
        assert_eq!(v.conn_served(c), 2);
        assert_eq!(v.total_served, 2);
    }
}
