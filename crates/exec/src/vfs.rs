//! Ram-disk files, pipes, synthetic network connections, fd tables, and
//! the named-channel registry of the shared-memory ring fabric.

use std::collections::BTreeMap;

use ufork_abi::{Errno, Fd, SysResult};

use crate::sched::TimeKey;

/// Ram-disk contents as `(path, bytes)` pairs in path order.
pub type FileSnapshot = Vec<(String, Vec<u8>)>;
/// Residual unread bytes of every live pipe, as `(pipe id, bytes)`.
pub type PipeSnapshot = Vec<(usize, Vec<u8>)>;
/// Per-ring traffic summary, as `(ring id, name, pushed, popped,
/// push digest, pop digest)` in id order.
pub type RingSnapshot = Vec<(usize, String, u64, u64, u64, u64)>;

/// Default pipe capacity in bytes (POSIX pipes buffer 64 KiB).
pub const PIPE_CAPACITY: usize = 64 * 1024;

/// What a file descriptor refers to.
#[derive(Clone, Debug)]
pub enum FdKind {
    /// A ram-disk file with a private offset.
    File {
        /// Path in the ram-disk namespace.
        path: String,
        /// Current read/write offset.
        offset: u64,
    },
    /// Read end of a pipe.
    PipeRead(usize),
    /// Write end of a pipe.
    PipeWrite(usize),
    /// A listening socket fed by a synthetic traffic source.
    Listener(usize),
    /// An accepted connection.
    Conn(usize),
    /// Producer end of a shared-memory descriptor ring.
    RingProd(usize),
    /// Consumer end of a shared-memory descriptor ring.
    RingCons(usize),
}

/// A per-process file-descriptor table.
///
/// Duplicated on fork, as POSIX requires ("relevant system resources are
/// also duplicated ... e.g., open file and message queue descriptors",
/// paper §3.5).
#[derive(Clone, Debug, Default)]
pub struct FdTable {
    entries: BTreeMap<i32, FdKind>,
    next: i32,
}

impl FdTable {
    /// An empty table (fd numbering starts at 3, as 0–2 are std streams).
    pub fn new() -> FdTable {
        FdTable {
            entries: BTreeMap::new(),
            next: 3,
        }
    }

    /// Inserts a new descriptor.
    pub fn insert(&mut self, kind: FdKind) -> Fd {
        let fd = self.next;
        self.next += 1;
        self.entries.insert(fd, kind);
        Fd(fd)
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> SysResult<&FdKind> {
        self.entries.get(&fd.0).ok_or(Errno::BadFd)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: Fd) -> SysResult<&mut FdKind> {
        self.entries.get_mut(&fd.0).ok_or(Errno::BadFd)
    }

    /// Removes a descriptor, returning its kind.
    pub fn remove(&mut self, fd: Fd) -> SysResult<FdKind> {
        self.entries.remove(&fd.0).ok_or(Errno::BadFd)
    }

    /// Iterates all entries.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FdKind)> {
        self.entries.iter().map(|(k, v)| (Fd(*k), v))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A side effect of an I/O operation that may wake blocked threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WakeEvent {
    /// Data written to pipe `id` at the given simulated time.
    PipeWritten(usize),
    /// All write ends of pipe `id` closed (readers see EOF).
    PipeHangup(usize),
    /// Buffer space freed on pipe `id` (a read drained bytes, or the
    /// last read end closed and blocked writers must fail with EPIPE).
    PipeDrained(usize),
    /// A message was pushed onto ring `id`, or its last producer end
    /// closed (blocked consumers must re-poll: data or EOF).
    RingPushed(usize),
    /// A slot was freed on ring `id`, or its last consumer end closed
    /// (blocked producers must re-poll: space or EPIPE).
    RingPopped(usize),
    /// A response was written on connection `id` (its next request is now
    /// scheduled).
    ConnAdvanced(usize),
    /// A SIGKILL-style signal was sent to the process.
    Kill(ufork_abi::Pid),
}

#[derive(Debug, Default)]
struct FileNode {
    data: Vec<u8>,
}

#[derive(Debug)]
struct Pipe {
    /// Buffered chunks with the simulated time they became available.
    chunks: std::collections::VecDeque<(Vec<u8>, f64)>,
    /// Bytes currently buffered across all chunks.
    buffered: usize,
    /// Buffer capacity: a write that does not fit whole is refused with
    /// `EAGAIN` (all-or-nothing; the machine turns that into a blocked
    /// writer).
    capacity: usize,
    read_ends: u32,
    write_ends: u32,
}

/// FNV-1a mix of one u64 into a running digest.
fn fnv_mix(digest: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Registry entry of one named SPSC descriptor ring. The ring's head,
/// tail and slots live in `Shm`-backed *simulated* memory (see
/// [`crate::ring`]); this entry holds the name binding, endpoint
/// refcounts, and the order-sensitive traffic digests the differential
/// oracle compares across backends.
#[derive(Clone, Debug)]
pub struct RingMeta {
    /// Registry name.
    pub name: String,
    /// Message slots in the ring.
    pub slots: u64,
    /// Payload bytes per message.
    pub msg_bytes: u64,
    /// Open producer-end descriptors (across all processes).
    pub prod_ends: u32,
    /// Open consumer-end descriptors.
    pub cons_ends: u32,
    /// A producer end has attached at some point. Until then a drained
    /// ring is *pending*, not EOF — named rings attach like FIFOs, and
    /// a consumer may open (and poll) before the first producer exists.
    pub ever_prod: bool,
    /// A consumer end has attached at some point; until then a push is
    /// buffered rather than failed with EPIPE.
    pub ever_cons: bool,
    /// Messages pushed over the ring's lifetime.
    pub pushed: u64,
    /// Messages popped.
    pub popped: u64,
    /// FNV-1a digest over `(seq, payload)` of every push, in order.
    pub push_digest: u64,
    /// FNV-1a digest over `(seq, payload)` of every pop, in order.
    pub pop_digest: u64,
}

impl RingMeta {
    /// Folds one message into a traffic digest.
    pub fn mix(digest: &mut u64, seq: u64, payload: &[u8]) {
        fnv_mix(digest, seq);
        fnv_mix(digest, payload.len() as u64);
        for &b in payload {
            fnv_mix(digest, u64::from(b));
        }
    }
}

/// Parameters of the synthetic connections a [`Vfs`] listener produces —
/// the wrk-style closed-loop traffic of the Nginx experiment.
#[derive(Clone, Copy, Debug)]
pub struct ConnTemplate {
    /// Requests sent per connection before it closes.
    pub requests_per_conn: u32,
    /// Request size in bytes.
    pub req_bytes: u32,
    /// Think/network gap between a response and the next request (ns).
    pub think_ns: f64,
}

#[derive(Debug)]
struct Listener {
    template: ConnTemplate,
    /// Connections still to be offered (effectively infinite for
    /// saturation benchmarks).
    remaining_conns: u64,
}

#[derive(Debug)]
struct Conn {
    template: ConnTemplate,
    /// Requests left to serve on this connection.
    remaining: u32,
    /// When the next request is available to read.
    next_req_at: f64,
    /// A request has been read and awaits its response.
    in_flight: bool,
    /// Requests fully served on this connection.
    pub served: u64,
}

/// True when simulated time `t` is strictly after `now` under the
/// scheduler's [`TimeKey`] ordering. The old epsilon comparison
/// (`t > now + 1e-9`) deferred chunks stamped *exactly* at `now` on some
/// platforms and admitted sub-epsilon-future ones; the integer key is
/// exact: a chunk stamped at `now` is readable, one stamped one ulp
/// later is not.
fn after(t: f64, now: f64) -> bool {
    TimeKey::from_ns(t) > TimeKey::from_ns(now)
}

/// The shared file system / network namespace.
#[derive(Debug, Default)]
pub struct Vfs {
    files: BTreeMap<String, FileNode>,
    pipes: Vec<Option<Pipe>>,
    listeners: Vec<Listener>,
    conns: Vec<Conn>,
    rings: Vec<RingMeta>,
    /// Total requests served across all connections (throughput metric).
    pub total_served: u64,
}

impl Vfs {
    /// An empty namespace.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    // ---- files ---------------------------------------------------------

    /// Opens a file, creating it when `create` is set.
    pub fn open_file(&mut self, path: &str, create: bool) -> SysResult<()> {
        if !self.files.contains_key(path) {
            if !create {
                return Err(Errno::NoEnt);
            }
            self.files.insert(path.to_string(), FileNode::default());
        }
        Ok(())
    }

    /// Writes at `offset`, extending the file as needed. Returns bytes
    /// written.
    pub fn write_file(&mut self, path: &str, offset: u64, data: &[u8]) -> SysResult<u64> {
        let node = self.files.get_mut(path).ok_or(Errno::NoEnt)?;
        let end = offset as usize + data.len();
        if node.data.len() < end {
            node.data.resize(end, 0);
        }
        node.data[offset as usize..end].copy_from_slice(data);
        Ok(data.len() as u64)
    }

    /// Reads up to `len` bytes at `offset`. Returns the bytes (possibly
    /// fewer than `len` at end of file).
    pub fn read_file(&self, path: &str, offset: u64, len: u64) -> SysResult<Vec<u8>> {
        let node = self.files.get(path).ok_or(Errno::NoEnt)?;
        let start = (offset as usize).min(node.data.len());
        let end = (start + len as usize).min(node.data.len());
        Ok(node.data[start..end].to_vec())
    }

    /// Atomically renames a file.
    pub fn rename(&mut self, from: &str, to: &str) -> SysResult<()> {
        let node = self.files.remove(from).ok_or(Errno::NoEnt)?;
        self.files.insert(to.to_string(), node);
        Ok(())
    }

    /// Full contents of a file (harness-side verification).
    pub fn file_contents(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|n| n.data.as_slice())
    }

    /// File size in bytes.
    pub fn file_len(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|n| n.data.len() as u64)
    }

    // ---- pipes -----------------------------------------------------------

    /// Creates a pipe with the default [`PIPE_CAPACITY`], returning its
    /// id (one read end + one write end outstanding).
    pub fn create_pipe(&mut self) -> usize {
        self.create_pipe_with_capacity(PIPE_CAPACITY)
    }

    /// Creates a pipe with an explicit buffer capacity (tests shrink it
    /// to exercise the writer-blocking path without megabyte writes).
    pub fn create_pipe_with_capacity(&mut self, capacity: usize) -> usize {
        let pipe = Pipe {
            chunks: std::collections::VecDeque::new(),
            buffered: 0,
            capacity,
            read_ends: 1,
            write_ends: 1,
        };
        if let Some(idx) = self.pipes.iter().position(Option::is_none) {
            self.pipes[idx] = Some(pipe);
            idx
        } else {
            self.pipes.push(Some(pipe));
            self.pipes.len() - 1
        }
    }

    fn pipe_mut(&mut self, id: usize) -> SysResult<&mut Pipe> {
        self.pipes
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or(Errno::BadFd)
    }

    /// Adds a sharer to one end (fd duplication on fork).
    pub fn pipe_add_end(&mut self, id: usize, write_end: bool) {
        if let Ok(p) = self.pipe_mut(id) {
            if write_end {
                p.write_ends += 1;
            } else {
                p.read_ends += 1;
            }
        }
    }

    /// Drops one end, returning every wake event the close implies: the
    /// last write end hangs up *all* blocked readers (EOF), and the last
    /// read end must wake all blocked writers so they fail with EPIPE.
    /// The pipe is freed when all ends are gone.
    pub fn pipe_drop_end(&mut self, id: usize, write_end: bool) -> Vec<WakeEvent> {
        let Ok(p) = self.pipe_mut(id) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        if write_end {
            p.write_ends -= 1;
            if p.write_ends == 0 {
                events.push(WakeEvent::PipeHangup(id));
            }
        } else {
            p.read_ends -= 1;
            if p.read_ends == 0 {
                events.push(WakeEvent::PipeDrained(id));
            }
        }
        if p.read_ends == 0 && p.write_ends == 0 {
            self.pipes[id] = None;
        }
        events
    }

    /// Appends to a pipe at simulated time `now`.
    ///
    /// Writes are all-or-nothing against the buffer capacity: a write
    /// that does not fit returns `EAGAIN` (the machine blocks the writer
    /// until a read drains space), and one larger than the whole buffer
    /// can never succeed and returns `EINVAL`.
    pub fn pipe_write(&mut self, id: usize, data: &[u8], now: f64) -> SysResult<u64> {
        let p = self.pipe_mut(id)?;
        if p.read_ends == 0 {
            return Err(Errno::BadFd); // EPIPE, near enough
        }
        if data.len() > p.capacity {
            return Err(Errno::Inval);
        }
        if p.buffered + data.len() > p.capacity {
            return Err(Errno::Again);
        }
        p.buffered += data.len();
        p.chunks.push_back((data.to_vec(), now));
        Ok(data.len() as u64)
    }

    /// Attempts to read at simulated time `now`.
    ///
    /// Data written at a later simulated time (by a step that executed
    /// earlier in host order) is not yet visible; the comparison uses the
    /// scheduler's exact [`TimeKey`] ordering, so a chunk stamped at
    /// precisely `now` is readable in the same slice.
    pub fn pipe_read(&mut self, id: usize, len: u64, now: f64) -> SysResult<PipeRead> {
        let p = self.pipe_mut(id)?;
        match p.chunks.front() {
            None => {
                if p.write_ends == 0 {
                    Ok(PipeRead::Eof)
                } else {
                    Ok(PipeRead::Empty)
                }
            }
            Some((_, t)) if after(*t, now) => Ok(PipeRead::NotUntil(*t)),
            Some(_) => {
                let mut out = Vec::new();
                while out.len() < len as usize {
                    let Some((chunk, t)) = p.chunks.front_mut() else {
                        break;
                    };
                    if after(*t, now) {
                        break;
                    }
                    let take = (len as usize - out.len()).min(chunk.len());
                    out.extend(chunk.drain(..take));
                    if chunk.is_empty() {
                        p.chunks.pop_front();
                    }
                }
                p.buffered -= out.len();
                Ok(PipeRead::Data(out))
            }
        }
    }

    /// Bytes currently buffered in a pipe.
    pub fn pipe_buffered(&self, id: usize) -> usize {
        self.pipes
            .get(id)
            .and_then(Option::as_ref)
            .map_or(0, |p| p.buffered)
    }

    // ---- rings -----------------------------------------------------------

    /// Registers (or looks up) the named ring, returning `(id, created)`.
    /// Geometry must match on reopen.
    pub fn ring_register(
        &mut self,
        name: &str,
        slots: u64,
        msg_bytes: u64,
    ) -> SysResult<(usize, bool)> {
        if let Some(id) = self.rings.iter().position(|r| r.name == name) {
            let r = &self.rings[id];
            if r.slots != slots || r.msg_bytes != msg_bytes {
                return Err(Errno::Inval);
            }
            return Ok((id, false));
        }
        if slots == 0 || msg_bytes == 0 {
            return Err(Errno::Inval);
        }
        self.rings.push(RingMeta {
            name: name.to_string(),
            slots,
            msg_bytes,
            prod_ends: 0,
            cons_ends: 0,
            ever_prod: false,
            ever_cons: false,
            pushed: 0,
            popped: 0,
            push_digest: 0xcbf2_9ce4_8422_2325,
            pop_digest: 0xcbf2_9ce4_8422_2325,
        });
        Ok((self.rings.len() - 1, true))
    }

    /// Looks up a registered ring by name.
    pub fn ring_lookup(&self, name: &str) -> Option<usize> {
        self.rings.iter().position(|r| r.name == name)
    }

    /// Registry entry of ring `id`.
    pub fn ring_meta(&self, id: usize) -> SysResult<&RingMeta> {
        self.rings.get(id).ok_or(Errno::BadFd)
    }

    /// Mutable registry entry of ring `id`.
    pub fn ring_meta_mut(&mut self, id: usize) -> SysResult<&mut RingMeta> {
        self.rings.get_mut(id).ok_or(Errno::BadFd)
    }

    /// Adds a sharer to one ring end (open, or fd duplication on fork).
    pub fn ring_add_end(&mut self, id: usize, producer: bool) {
        if let Some(r) = self.rings.get_mut(id) {
            if producer {
                r.prod_ends += 1;
                r.ever_prod = true;
            } else {
                r.cons_ends += 1;
                r.ever_cons = true;
            }
        }
    }

    /// Drops one ring end, returning the wake events the close implies:
    /// the last producer end wakes all blocked consumers (they re-poll
    /// and see EOF once drained), the last consumer end wakes all
    /// blocked producers (they fail with EPIPE). The registry entry
    /// persists — rings are named and can be reopened.
    pub fn ring_drop_end(&mut self, id: usize, producer: bool) -> Vec<WakeEvent> {
        let Some(r) = self.rings.get_mut(id) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        if producer {
            r.prod_ends -= 1;
            if r.prod_ends == 0 {
                events.push(WakeEvent::RingPushed(id));
            }
        } else {
            r.cons_ends -= 1;
            if r.cons_ends == 0 {
                events.push(WakeEvent::RingPopped(id));
            }
        }
        events
    }

    /// Per-ring traffic summary in id order (the differential oracle
    /// compares these across backends: same messages, same order).
    pub fn ring_snapshot(&self) -> RingSnapshot {
        self.rings
            .iter()
            .enumerate()
            .map(|(id, r)| {
                (
                    id,
                    r.name.clone(),
                    r.pushed,
                    r.popped,
                    r.push_digest,
                    r.pop_digest,
                )
            })
            .collect()
    }

    // ---- listeners & connections -------------------------------------------

    /// Installs a listener producing `conns` connections from `template`.
    /// Returns the listener id.
    pub fn create_listener(&mut self, template: ConnTemplate, conns: u64) -> usize {
        self.listeners.push(Listener {
            template,
            remaining_conns: conns,
        });
        self.listeners.len() - 1
    }

    /// Accepts a connection from listener `id` at time `now`.
    ///
    /// Returns the new connection id, or `None` when the source is
    /// exhausted.
    pub fn accept(&mut self, id: usize, now: f64) -> SysResult<Option<usize>> {
        let l = self.listeners.get_mut(id).ok_or(Errno::BadFd)?;
        if l.remaining_conns == 0 {
            return Ok(None);
        }
        l.remaining_conns -= 1;
        let template = l.template;
        self.conns.push(Conn {
            template,
            remaining: template.requests_per_conn,
            next_req_at: now,
            in_flight: false,
            served: 0,
        });
        Ok(Some(self.conns.len() - 1))
    }

    /// Attempts to read the next request from connection `id` at `now`.
    ///
    /// * `Ok(Ready(bytes))` — a request is available;
    /// * `Ok(Eof)` — the connection is done;
    /// * `Ok(NotUntil(t))` — block until simulated time `t`.
    pub fn conn_read(&mut self, id: usize, now: f64) -> SysResult<ConnRead> {
        let c = self.conns.get_mut(id).ok_or(Errno::BadFd)?;
        if c.remaining == 0 {
            return Ok(ConnRead::Eof);
        }
        if c.in_flight {
            // Protocol misuse: a second read before responding.
            return Err(Errno::Inval);
        }
        if after(c.next_req_at, now) {
            return Ok(ConnRead::NotUntil(c.next_req_at));
        }
        c.in_flight = true;
        Ok(ConnRead::Ready(c.template.req_bytes as u64))
    }

    /// Writes the response for the in-flight request at `now`.
    pub fn conn_write(&mut self, id: usize, now: f64) -> SysResult<u64> {
        let c = self.conns.get_mut(id).ok_or(Errno::BadFd)?;
        if !c.in_flight {
            return Err(Errno::Inval);
        }
        c.in_flight = false;
        c.remaining -= 1;
        c.served += 1;
        self.total_served += 1;
        c.next_req_at = now + c.template.think_ns;
        Ok(0)
    }

    /// Requests served on one connection.
    pub fn conn_served(&self, id: usize) -> u64 {
        self.conns.get(id).map_or(0, |c| c.served)
    }

    /// Deterministic snapshot of externally observable state: every file
    /// as `(path, contents)` in path order, plus the residual (unread)
    /// bytes of every live pipe in id order. The differential scheduler
    /// suite compares this across engines — two schedules are only
    /// equivalent if they leave the *same* bytes behind. Ring traffic has
    /// its own snapshot ([`Vfs::ring_snapshot`]).
    pub fn state_snapshot(&self) -> (FileSnapshot, PipeSnapshot) {
        let files = self
            .files
            .iter()
            .map(|(p, n)| (p.clone(), n.data.clone()))
            .collect();
        let pipes = self
            .pipes
            .iter()
            .enumerate()
            .filter_map(|(id, p)| {
                p.as_ref().map(|p| {
                    let residue: Vec<u8> = p
                        .chunks
                        .iter()
                        .flat_map(|(bytes, _)| bytes.iter().copied())
                        .collect();
                    (id, residue)
                })
            })
            .collect();
        (files, pipes)
    }
}

/// Result of [`Vfs::pipe_read`].
#[derive(Clone, Debug, PartialEq)]
pub enum PipeRead {
    /// Bytes available now.
    Data(Vec<u8>),
    /// Writers remain but nothing is readable yet.
    Empty,
    /// Data exists but only from simulated time `t` onwards.
    NotUntil(f64),
    /// All writers closed and the buffer is drained.
    Eof,
}

/// Result of [`Vfs::conn_read`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConnRead {
    /// A request of this many bytes is ready.
    Ready(u64),
    /// No more requests on this connection.
    Eof,
    /// Block until the given simulated time.
    NotUntil(f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_insert_get_remove() {
        let mut t = FdTable::new();
        let fd = t.insert(FdKind::PipeRead(0));
        assert_eq!(fd, Fd(3));
        assert!(matches!(t.get(fd), Ok(FdKind::PipeRead(0))));
        assert!(matches!(t.remove(fd), Ok(FdKind::PipeRead(0))));
        assert_eq!(t.get(fd).unwrap_err(), Errno::BadFd);
    }

    #[test]
    fn file_write_read_rename() {
        let mut v = Vfs::new();
        assert_eq!(v.open_file("a", false).unwrap_err(), Errno::NoEnt);
        v.open_file("a", true).unwrap();
        v.write_file("a", 0, b"hello").unwrap();
        v.write_file("a", 5, b" world").unwrap();
        assert_eq!(v.read_file("a", 0, 100).unwrap(), b"hello world");
        v.rename("a", "b").unwrap();
        assert!(v.file_contents("a").is_none());
        assert_eq!(v.file_len("b"), Some(11));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut v = Vfs::new();
        v.open_file("f", true).unwrap();
        v.write_file("f", 4, b"x").unwrap();
        assert_eq!(v.read_file("f", 0, 5).unwrap(), vec![0, 0, 0, 0, b'x']);
    }

    #[test]
    fn pipe_basic_flow() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        assert_eq!(v.pipe_read(p, 10, 0.0).unwrap(), PipeRead::Empty);
        v.pipe_write(p, b"abc", 5.0).unwrap();
        // Reading "before" the write sees nothing yet.
        assert_eq!(v.pipe_read(p, 2, 1.0).unwrap(), PipeRead::NotUntil(5.0));
        assert_eq!(
            v.pipe_read(p, 2, 5.0).unwrap(),
            PipeRead::Data(b"ab".to_vec())
        );
        assert_eq!(
            v.pipe_read(p, 2, 5.0).unwrap(),
            PipeRead::Data(b"c".to_vec())
        );
        assert_eq!(v.pipe_read(p, 2, 5.0).unwrap(), PipeRead::Empty);
    }

    #[test]
    fn pipe_read_stops_at_future_chunk() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        v.pipe_write(p, b"ab", 1.0).unwrap();
        v.pipe_write(p, b"cd", 9.0).unwrap();
        // At t=2 only the first chunk is visible.
        assert_eq!(
            v.pipe_read(p, 10, 2.0).unwrap(),
            PipeRead::Data(b"ab".to_vec())
        );
        assert_eq!(v.pipe_read(p, 10, 2.0).unwrap(), PipeRead::NotUntil(9.0));
        assert_eq!(
            v.pipe_read(p, 10, 9.0).unwrap(),
            PipeRead::Data(b"cd".to_vec())
        );
    }

    #[test]
    fn pipe_chunk_stamped_exactly_at_now_is_readable() {
        // The off-by-one the TimeKey alignment fixes: a chunk stamped at
        // precisely `now` belongs to this slice, and only a strictly
        // later stamp — even one ulp later — defers it.
        let mut v = Vfs::new();
        let p = v.create_pipe();
        let now = 123_456.789_f64;
        v.pipe_write(p, b"at", now).unwrap();
        assert_eq!(
            v.pipe_read(p, 10, now).unwrap(),
            PipeRead::Data(b"at".to_vec())
        );
        // One-ulp-later stamp: the adjacent representable instant (the
        // idiom the scheduler's TimeKey tests use).
        let next = f64::from_bits(now.to_bits() + 1);
        v.pipe_write(p, b"later", next).unwrap();
        assert_eq!(v.pipe_read(p, 10, now).unwrap(), PipeRead::NotUntil(next));
        assert_eq!(
            v.pipe_read(p, 10, next).unwrap(),
            PipeRead::Data(b"later".to_vec())
        );
    }

    #[test]
    fn pipe_eof_and_free() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        v.pipe_write(p, b"z", 1.0).unwrap();
        let ev = v.pipe_drop_end(p, true);
        assert_eq!(ev, vec![WakeEvent::PipeHangup(p)]);
        // Buffered data still readable, then EOF.
        assert_eq!(
            v.pipe_read(p, 4, 2.0).unwrap(),
            PipeRead::Data(b"z".to_vec())
        );
        assert_eq!(v.pipe_read(p, 4, 2.0).unwrap(), PipeRead::Eof);
        // Dropping the read end frees the slot for reuse.
        assert_eq!(v.pipe_drop_end(p, false), vec![WakeEvent::PipeDrained(p)]);
        let q = v.create_pipe();
        assert_eq!(q, p);
    }

    #[test]
    fn write_to_readerless_pipe_fails() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        v.pipe_drop_end(p, false);
        assert_eq!(v.pipe_write(p, b"x", 0.0).unwrap_err(), Errno::BadFd);
    }

    #[test]
    fn pipe_write_backpressure() {
        let mut v = Vfs::new();
        let p = v.create_pipe_with_capacity(8);
        assert_eq!(v.pipe_write(p, b"abcde", 1.0).unwrap(), 5);
        assert_eq!(v.pipe_buffered(p), 5);
        // All-or-nothing: 4 more bytes do not fit in the 3 remaining.
        assert_eq!(v.pipe_write(p, b"wxyz", 1.0).unwrap_err(), Errno::Again);
        assert_eq!(v.pipe_write(p, b"fgh", 1.0).unwrap(), 3);
        assert_eq!(v.pipe_write(p, b"!", 1.0).unwrap_err(), Errno::Again);
        // A read drains space and the refused write fits on retry.
        assert_eq!(
            v.pipe_read(p, 4, 2.0).unwrap(),
            PipeRead::Data(b"abcd".to_vec())
        );
        assert_eq!(v.pipe_buffered(p), 4);
        assert_eq!(v.pipe_write(p, b"wxyz", 2.0).unwrap(), 4);
        // A write larger than the whole buffer can never succeed.
        assert_eq!(
            v.pipe_write(p, b"123456789", 2.0).unwrap_err(),
            Errno::Inval
        );
    }

    #[test]
    fn default_capacity_is_posix_sized() {
        let mut v = Vfs::new();
        let p = v.create_pipe();
        let big = vec![7u8; PIPE_CAPACITY];
        assert_eq!(v.pipe_write(p, &big, 0.0).unwrap(), PIPE_CAPACITY as u64);
        assert_eq!(v.pipe_write(p, b"x", 0.0).unwrap_err(), Errno::Again);
    }

    #[test]
    fn ring_registry_round_trip() {
        let mut v = Vfs::new();
        let (id, created) = v.ring_register("req0", 8, 32).unwrap();
        assert!(created);
        assert_eq!(v.ring_lookup("req0"), Some(id));
        let (again, created) = v.ring_register("req0", 8, 32).unwrap();
        assert_eq!(again, id);
        assert!(!created);
        // Geometry mismatch on reopen is refused.
        assert_eq!(v.ring_register("req0", 16, 32).unwrap_err(), Errno::Inval);
        assert_eq!(v.ring_register("z", 0, 32).unwrap_err(), Errno::Inval);

        v.ring_add_end(id, true);
        v.ring_add_end(id, true);
        v.ring_add_end(id, false);
        assert_eq!(v.ring_meta(id).unwrap().prod_ends, 2);
        assert_eq!(v.ring_drop_end(id, true), vec![]);
        assert_eq!(v.ring_drop_end(id, true), vec![WakeEvent::RingPushed(id)]);
        assert_eq!(v.ring_drop_end(id, false), vec![WakeEvent::RingPopped(id)]);
        // The named entry persists for reopening.
        assert_eq!(v.ring_lookup("req0"), Some(id));
    }

    #[test]
    fn ring_digests_are_order_sensitive() {
        let mut a = 0xcbf2_9ce4_8422_2325u64;
        let mut b = 0xcbf2_9ce4_8422_2325u64;
        RingMeta::mix(&mut a, 0, b"one");
        RingMeta::mix(&mut a, 1, b"two");
        RingMeta::mix(&mut b, 0, b"two");
        RingMeta::mix(&mut b, 1, b"one");
        assert_ne!(a, b);
    }

    #[test]
    fn conn_request_cycle() {
        let mut v = Vfs::new();
        let t = ConnTemplate {
            requests_per_conn: 2,
            req_bytes: 100,
            think_ns: 50.0,
        };
        let l = v.create_listener(t, 1);
        let c = v.accept(l, 10.0).unwrap().unwrap();
        assert_eq!(v.accept(l, 10.0).unwrap(), None); // exhausted
        assert_eq!(v.conn_read(c, 10.0).unwrap(), ConnRead::Ready(100));
        // Double read before response is a protocol error.
        assert_eq!(v.conn_read(c, 10.0).unwrap_err(), Errno::Inval);
        v.conn_write(c, 20.0).unwrap();
        // Next request arrives after the think gap.
        assert_eq!(v.conn_read(c, 21.0).unwrap(), ConnRead::NotUntil(70.0));
        assert_eq!(v.conn_read(c, 70.0).unwrap(), ConnRead::Ready(100));
        v.conn_write(c, 75.0).unwrap();
        assert_eq!(v.conn_read(c, 200.0).unwrap(), ConnRead::Eof);
        assert_eq!(v.conn_served(c), 2);
        assert_eq!(v.total_served, 2);
    }
}
