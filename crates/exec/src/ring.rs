//! Shared-memory SPSC descriptor rings.
//!
//! A ring lives entirely in `Shm`-backed *simulated* memory: a 64-byte
//! header of little-endian u64 words followed by fixed-size message
//! slots. Because the whole structure is ordinary shared memory, fork
//! does nothing special for it — the `Shm` arms of all three fork walks
//! refcount-share the frames, and the *endpoint capability* the program
//! holds (sealed with [`OType::RING_ENDPOINT`]) is relocated by the
//! ordinary register walk, seal intact. That is the property this fabric
//! exists to exercise: IPC connectivity survives address-space surgery
//! purely through capability relocation (paper §3.5–3.7).
//!
//! Layout (`word = u64 LE`):
//!
//! ```text
//! word 0  magic
//! word 1  head   — consumer sequence number
//! word 2  tail   — producer sequence number
//! word 3  slots
//! word 4  msg_bytes
//! words 5..8 reserved
//! slot i at 64 + (i % slots) * (8 + msg_bytes):
//!     [ stamp: f64 bits ][ payload: msg_bytes ]
//! ```
//!
//! The per-slot stamp carries discrete-event causality: a push stamps
//! the slot with its simulated time, so a consumer running "earlier"
//! observes [`RingPop::NotUntil`] instead of data from its future; a pop
//! overwrites the stamp with *its* time (the free time), so a producer
//! cannot reuse a slot freed in its future. All comparisons use the
//! scheduler's exact [`TimeKey`] ordering — the same fix the pipe layer
//! got for its epsilon off-by-one.

use ufork_abi::{Errno, Pid, SysResult};
use ufork_cheri::{Capability, OType, Perms};

use crate::ctx::Ctx;
use crate::memos::MemOs;
use crate::sched::TimeKey;

/// Header size in bytes.
pub const RING_HDR_BYTES: u64 = 64;
/// Per-slot overhead (the stamp word).
pub const RING_SLOT_HDR: u64 = 8;
/// Header magic ("uFORKrng" little-endian-ish).
pub const RING_MAGIC: u64 = 0x7546_4f52_4b72_6e67;

/// Total window size of a ring with the given geometry.
pub const fn ring_bytes(slots: u64, msg_bytes: u64) -> u64 {
    RING_HDR_BYTES + slots * (RING_SLOT_HDR + msg_bytes)
}

/// The machine-held sealing authority for ring endpoints: covers exactly
/// [`OType::RING_ENDPOINT`] in otype space, with seal + unseal rights.
/// Programs never see it — they hold only the sealed endpoint.
pub fn seal_authority() -> Capability {
    Capability::new_root(
        u64::from(OType::RING_ENDPOINT.raw()),
        1,
        Perms::SEAL | Perms::UNSEAL,
    )
}

/// Outcome of a raw push attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum RingPush {
    /// Message enqueued as sequence number `seq`.
    Pushed(u64),
    /// All slots occupied: block until a pop frees one.
    Full,
    /// The next slot frees only at simulated time `t` (it was popped by
    /// a consumer running ahead of this producer): retry then.
    NotUntil(f64),
}

/// Outcome of a raw pop attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum RingPop {
    /// Message `seq` dequeued.
    Popped {
        /// Its sequence number.
        seq: u64,
        /// Its payload (exactly `msg_bytes`).
        data: Vec<u8>,
    },
    /// No messages pending (EOF is the registry's call: the ring itself
    /// does not know how many producer ends remain).
    Empty,
    /// The head message lands only at simulated time `t`: retry then.
    NotUntil(f64),
}

fn word_cap(window: &Capability, off: u64) -> SysResult<Capability> {
    window
        .with_addr(window.base() + off)
        .map_err(|_| Errno::Fault)
}

fn load_word<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    off: u64,
) -> SysResult<u64> {
    let mut b = [0u8; 8];
    os.load(ctx, pid, &word_cap(window, off)?, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn store_word<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    off: u64,
    v: u64,
) -> SysResult<()> {
    os.store(ctx, pid, &word_cap(window, off)?, &v.to_le_bytes())
}

/// Initializes a fresh ring header in the (zeroed) shared window.
pub fn ring_init<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    slots: u64,
    msg_bytes: u64,
) -> SysResult<()> {
    ctx.phase("ipc/ring/init");
    store_word(os, ctx, pid, window, 0, RING_MAGIC)?;
    store_word(os, ctx, pid, window, 8, 0)?; // head
    store_word(os, ctx, pid, window, 16, 0)?; // tail
    store_word(os, ctx, pid, window, 24, slots)?;
    store_word(os, ctx, pid, window, 32, msg_bytes)
    // Slot stamps start as 0 bits = t=0.0, readable from the first
    // instant — no per-slot initialization needed.
}

/// Verifies the header of an existing ring against expected geometry
/// (reopen-by-name and post-fork sanity checks).
pub fn ring_verify<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    slots: u64,
    msg_bytes: u64,
) -> SysResult<()> {
    if load_word(os, ctx, pid, window, 0)? != RING_MAGIC
        || load_word(os, ctx, pid, window, 24)? != slots
        || load_word(os, ctx, pid, window, 32)? != msg_bytes
    {
        return Err(Errno::Inval);
    }
    Ok(())
}

/// Attempts to push `payload` (exactly `msg_bytes` long) at simulated
/// time `now` through the **unsealed** window capability.
pub fn ring_push_raw<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    payload: &[u8],
    now: f64,
) -> SysResult<RingPush> {
    ctx.phase("ipc/ring/push");
    let head = load_word(os, ctx, pid, window, 8)?;
    let tail = load_word(os, ctx, pid, window, 16)?;
    let slots = load_word(os, ctx, pid, window, 24)?;
    let msg_bytes = load_word(os, ctx, pid, window, 32)?;
    if slots == 0 || payload.len() as u64 != msg_bytes {
        return Err(Errno::Inval);
    }
    if tail.wrapping_sub(head) >= slots {
        return Ok(RingPush::Full);
    }
    let off = RING_HDR_BYTES + (tail % slots) * (RING_SLOT_HDR + msg_bytes);
    // A reused slot carries its free time; a producer running earlier in
    // simulated time must not fill a slot freed in its future.
    let free_stamp = f64::from_bits(load_word(os, ctx, pid, window, off)?);
    if TimeKey::from_ns(free_stamp) > TimeKey::from_ns(now) {
        return Ok(RingPush::NotUntil(free_stamp));
    }
    os.store(ctx, pid, &word_cap(window, off + RING_SLOT_HDR)?, payload)?;
    store_word(os, ctx, pid, window, off, now.to_bits())?;
    store_word(os, ctx, pid, window, 16, tail.wrapping_add(1))?;
    Ok(RingPush::Pushed(tail))
}

/// Attempts to pop a message at simulated time `now` through the
/// **unsealed** window capability.
pub fn ring_pop_raw<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    now: f64,
) -> SysResult<RingPop> {
    ctx.phase("ipc/ring/pop");
    let head = load_word(os, ctx, pid, window, 8)?;
    let tail = load_word(os, ctx, pid, window, 16)?;
    let slots = load_word(os, ctx, pid, window, 24)?;
    let msg_bytes = load_word(os, ctx, pid, window, 32)?;
    if slots == 0 {
        return Err(Errno::Inval);
    }
    if head == tail {
        return Ok(RingPop::Empty);
    }
    let off = RING_HDR_BYTES + (head % slots) * (RING_SLOT_HDR + msg_bytes);
    let stamp = f64::from_bits(load_word(os, ctx, pid, window, off)?);
    if TimeKey::from_ns(stamp) > TimeKey::from_ns(now) {
        return Ok(RingPop::NotUntil(stamp));
    }
    let mut data = vec![0u8; msg_bytes as usize];
    os.load(ctx, pid, &word_cap(window, off + RING_SLOT_HDR)?, &mut data)?;
    // Free time: the producer side checks it before reusing the slot.
    store_word(os, ctx, pid, window, off, now.to_bits())?;
    store_word(os, ctx, pid, window, 8, head.wrapping_add(1))?;
    Ok(RingPop::Popped { seq: head, data })
}

/// Messages currently enqueued (header read only; debugging/tests).
pub fn ring_depth<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
) -> SysResult<u64> {
    let head = load_word(os, ctx, pid, window, 8)?;
    let tail = load_word(os, ctx, pid, window, 16)?;
    Ok(tail.wrapping_sub(head))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(ring_bytes(8, 32), 64 + 8 * 40);
    }

    #[test]
    fn seal_authority_covers_only_ring_otype() {
        let auth = seal_authority();
        let data = Capability::new_root(0x1000, 0x100, Perms::data());
        let sealed = data.seal(OType::RING_ENDPOINT, &auth).unwrap();
        assert!(sealed.is_sealed());
        // The authority covers no other otype.
        assert!(data.seal(OType::SYSCALL_ENTRY, &auth).is_err());
        assert!(data.seal(OType::FIRST_DYNAMIC, &auth).is_err());
        // Round-trips through unseal with the same authority.
        let unsealed = sealed.unseal(&auth).unwrap();
        assert!(!unsealed.is_sealed());
        assert_eq!(unsealed.base(), data.base());
    }
}
