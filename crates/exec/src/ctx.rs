//! Per-step accounting context.

use ufork_sim::OpCounters;

/// Accounting context threaded through every backend operation during one
/// program step.
///
/// Time is split into user and kernel nanoseconds so the machine can apply
/// the big-kernel-lock serialization model (paper §4.5: Unikraft "lets
/// application code run concurrently but serializes kernel code
/// execution") to the kernel portion only.
#[derive(Debug, Default)]
pub struct Ctx {
    /// User-mode simulated time accumulated this step.
    pub user_ns: f64,
    /// Kernel-mode simulated time accumulated this step.
    pub kernel_ns: f64,
    /// Operation counters (shared with the machine).
    pub counters: OpCounters,
}

impl Ctx {
    /// A fresh context.
    pub fn new() -> Ctx {
        Ctx::default()
    }

    /// Charges user time.
    pub fn user(&mut self, ns: f64) {
        self.user_ns += ns;
    }

    /// Charges kernel time.
    pub fn kernel(&mut self, ns: f64) {
        self.kernel_ns += ns;
    }

    /// Total time this step.
    pub fn total(&self) -> f64 {
        self.user_ns + self.kernel_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_split_time() {
        let mut c = Ctx::new();
        c.user(10.0);
        c.kernel(5.0);
        c.user(2.5);
        assert_eq!(c.user_ns, 12.5);
        assert_eq!(c.kernel_ns, 5.0);
        assert_eq!(c.total(), 17.5);
    }
}
