//! Per-step accounting context.

use ufork_sim::{OpCounters, TraceBuf};

/// Accounting context threaded through every backend operation during one
/// program step.
///
/// Time is split into user and kernel nanoseconds so the machine can apply
/// the big-kernel-lock serialization model (paper §4.5: Unikraft "lets
/// application code run concurrently but serializes kernel code
/// execution") to the kernel portion only.
///
/// The context also carries the optional trace sink
/// ([`ufork_sim::TraceBuf`]): every kernel charge is attributed to the
/// currently open phase span, so per-phase totals are built from the same
/// `f64` additions, in the same order, as `kernel_ns` itself. When
/// tracing is disabled (the default) each hook is a single predictable
/// branch and the clock arithmetic is unchanged.
#[derive(Debug, Default)]
pub struct Ctx {
    /// User-mode simulated time accumulated this step.
    pub user_ns: f64,
    /// Kernel-mode simulated time accumulated this step.
    pub kernel_ns: f64,
    /// Operation counters (shared with the machine).
    pub counters: OpCounters,
    /// Trace sink; disabled (and allocation-free) by default.
    pub trace: TraceBuf,
}

impl Ctx {
    /// A fresh context.
    pub fn new() -> Ctx {
        Ctx::default()
    }

    /// A fresh context with tracing enabled (event ring of `cap` slots).
    pub fn traced(cap: usize) -> Ctx {
        let mut c = Ctx::new();
        c.trace = TraceBuf::enabled(cap);
        c
    }

    /// Charges user time. User time is not phase-attributed: the trace
    /// layer models the paper's *kernel* phase breakdown (fork, fault
    /// resolution), and user/kernel ns stay separate clocks.
    pub fn user(&mut self, ns: f64) {
        self.user_ns += ns;
    }

    /// Charges kernel time, feeding the trace sink when enabled.
    #[inline]
    pub fn kernel(&mut self, ns: f64) {
        self.kernel_ns += ns;
        if self.trace.is_enabled() {
            self.trace.on_charge(ns);
        }
    }

    /// Total time this step.
    pub fn total(&self) -> f64 {
        self.user_ns + self.kernel_ns
    }

    /// Opens a trace phase span (closing any open one) at the current
    /// simulated kernel time. No-op when tracing is disabled.
    #[inline]
    pub fn phase(&mut self, name: &'static str) {
        if self.trace.is_enabled() {
            let now = self.kernel_ns;
            self.trace.phase(name, now);
        }
    }

    /// Closes the open trace phase span, if any.
    #[inline]
    pub fn phase_end(&mut self) {
        if self.trace.is_enabled() {
            let now = self.kernel_ns;
            self.trace.phase_end(now);
        }
    }

    /// Records a zero-duration trace marker at the current kernel time.
    #[inline]
    pub fn instant(&mut self, name: &'static str) {
        if self.trace.is_enabled() {
            let now = self.kernel_ns;
            self.trace.instant(name, now);
        }
    }

    /// Records a span of per-chunk work on a parallel lane. `start_ns`
    /// and `dur_ns` come from the caller's deterministic lane clocks.
    #[inline]
    pub fn lane_span(&mut self, name: &'static str, lane: u32, start_ns: f64, dur_ns: f64) {
        if self.trace.is_enabled() {
            self.trace.lane_span(name, lane, start_ns, dur_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_split_time() {
        let mut c = Ctx::new();
        c.user(10.0);
        c.kernel(5.0);
        c.user(2.5);
        assert_eq!(c.user_ns, 12.5);
        assert_eq!(c.kernel_ns, 5.0);
        assert_eq!(c.total(), 17.5);
    }

    #[test]
    fn disabled_trace_leaves_clocks_identical() {
        let mut plain = Ctx::new();
        let mut traced_off = Ctx::new();
        assert!(!traced_off.trace.is_enabled());
        for ns in [1.5, 0.7, 400.0, 30.0] {
            plain.kernel(ns);
            traced_off.kernel(ns);
            traced_off.phase("ignored");
            traced_off.instant("ignored");
        }
        traced_off.phase_end();
        assert_eq!(plain.kernel_ns.to_bits(), traced_off.kernel_ns.to_bits());
        assert_eq!(traced_off.trace.charged_total(), 0.0);
    }

    #[test]
    fn charged_total_is_bitwise_kernel_ns_on_fresh_ctx() {
        let mut c = Ctx::traced(64);
        c.phase("a");
        // Non-dyadic charges: order-sensitive f64 sums.
        for ns in [0.7, 0.9, 0.45, 350.0, 5.5, 1.2] {
            c.kernel(ns);
        }
        c.phase("b");
        c.kernel(12.0);
        c.phase_end();
        assert_eq!(c.kernel_ns.to_bits(), c.trace.charged_total().to_bits());
    }

    #[test]
    fn user_time_is_not_phase_attributed() {
        let mut c = Ctx::traced(16);
        c.phase("p");
        c.user(100.0);
        c.kernel(10.0);
        c.phase_end();
        assert_eq!(c.trace.charged_total(), 10.0);
        assert_eq!(c.trace.phases()[0].total_ns, 10.0);
    }
}
