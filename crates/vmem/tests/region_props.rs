//! Property tests for the SAS region allocator: no two live regions ever
//! overlap, frees coalesce, and accounting stays consistent under
//! arbitrary alloc/free churn.
//!
//! Runs on the in-repo `ufork-testkit` harness (offline; default-on
//! `props` feature).
#![cfg(feature = "props")]

use ufork_testkit::{forall, no_shrink, shrink_vec, PropConfig, Rng};
use ufork_vmem::{Region, RegionAllocator, VirtAddr};

fn cfg() -> PropConfig {
    PropConfig::from_env(256)
}

#[derive(Clone, Debug)]
enum Op {
    Alloc(u64),
    Free(usize),
}

fn gen_ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.range(1, 64) as usize;
    (0..n)
        .map(|_| {
            if rng.bool() {
                Op::Alloc(rng.range(1, 0x8000))
            } else {
                Op::Free(rng.index(32))
            }
        })
        .collect()
}

fn overlapping(a: &Region, b: &Region) -> bool {
    a.base.0 < b.top().0 && b.base.0 < a.top().0
}

#[test]
fn live_regions_never_overlap() {
    forall(
        "live_regions_never_overlap",
        &cfg(),
        |rng| {
            let aslr = if rng.bool() {
                Some(rng.next_u64())
            } else {
                None
            };
            (gen_ops(rng), aslr)
        },
        |(ops, aslr)| shrink_vec(ops).into_iter().map(|o| (o, *aslr)).collect(),
        |(ops, aslr)| {
            let span = 0x40_0000;
            let mut a = RegionAllocator::new(VirtAddr(0x1000), span, 0x1000);
            if let Some(seed) = aslr {
                a.set_aslr_seed(*seed);
            }
            let mut live: Vec<Region> = Vec::new();
            for op in ops {
                match op {
                    Op::Alloc(len) => {
                        if let Ok(r) = a.alloc(*len) {
                            if r.base.0 < 0x1000 || r.top().0 > 0x1000 + span {
                                return Err(format!("{r:?} escapes the span"));
                            }
                            if r.base.0 % 0x1000 != 0 {
                                return Err(format!("{r:?} misaligned"));
                            }
                            for other in &live {
                                if overlapping(&r, other) {
                                    return Err(format!("{r:?} overlaps {other:?}"));
                                }
                            }
                            live.push(r);
                        }
                    }
                    Op::Free(idx) => {
                        if !live.is_empty() {
                            let r = live.remove(idx % live.len());
                            if a.free(r).is_err() {
                                return Err(format!("free of live {r:?} rejected"));
                            }
                        }
                    }
                }
                // Accounting: free bytes + live bytes == span.
                let live_bytes: u64 = live.iter().map(|r| r.len).sum();
                if a.free_bytes() + live_bytes != span {
                    return Err(format!(
                        "accounting drift: free {} + live {live_bytes} != span {span}",
                        a.free_bytes()
                    ));
                }
                // Fragmentation is a valid ratio.
                let f = a.fragmentation();
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("fragmentation {f} out of [0,1]"));
                }
            }
            // Freeing everything restores a single hole.
            for r in live.drain(..) {
                if a.free(r).is_err() {
                    return Err(format!("final free of {r:?} rejected"));
                }
            }
            if a.free_bytes() != span || a.largest_hole() != span {
                return Err("frees did not coalesce back to a single hole".into());
            }
            Ok(())
        },
    );
}

#[test]
fn double_free_always_rejected() {
    forall(
        "double_free_always_rejected",
        &cfg(),
        |rng| rng.range(1, 0x4000),
        no_shrink,
        |&len| {
            let mut a = RegionAllocator::new(VirtAddr(0), 0x10_0000, 0x1000);
            let r = a.alloc(len).unwrap();
            a.free(r).unwrap();
            if a.free(r).is_ok() {
                return Err(format!("double free of {r:?} accepted"));
            }
            Ok(())
        },
    );
}
