//! Property tests for the SAS region allocator: no two live regions ever
//! overlap, frees coalesce, and accounting stays consistent under
//! arbitrary alloc/free churn.

use proptest::prelude::*;
use ufork_vmem::{Region, RegionAllocator, VirtAddr};

#[derive(Clone, Debug)]
enum Op {
    Alloc(u64),
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..0x8000).prop_map(Op::Alloc),
            (0usize..32).prop_map(Op::Free),
        ],
        1..64,
    )
}

fn overlapping(a: &Region, b: &Region) -> bool {
    a.base.0 < b.top().0 && b.base.0 < a.top().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn live_regions_never_overlap(ops in ops(), aslr in any::<Option<u64>>()) {
        let span = 0x40_0000;
        let mut a = RegionAllocator::new(VirtAddr(0x1000), span, 0x1000);
        if let Some(seed) = aslr {
            a.set_aslr_seed(seed);
        }
        let mut live: Vec<Region> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(r) = a.alloc(len) {
                        // Within the span.
                        prop_assert!(r.base.0 >= 0x1000);
                        prop_assert!(r.top().0 <= 0x1000 + span);
                        // Aligned.
                        prop_assert_eq!(r.base.0 % 0x1000, 0);
                        // Disjoint from every live region.
                        for other in &live {
                            prop_assert!(!overlapping(&r, other), "{r:?} vs {other:?}");
                        }
                        live.push(r);
                    }
                }
                Op::Free(idx) => {
                    if !live.is_empty() {
                        let r = live.remove(idx % live.len());
                        prop_assert!(a.free(r).is_ok());
                    }
                }
            }
            // Accounting: free bytes + live bytes == span.
            let live_bytes: u64 = live.iter().map(|r| r.len).sum();
            prop_assert_eq!(a.free_bytes() + live_bytes, span);
            // Fragmentation is a valid ratio.
            let f = a.fragmentation();
            prop_assert!((0.0..=1.0).contains(&f));
        }
        // Freeing everything restores a single hole.
        for r in live.drain(..) {
            prop_assert!(a.free(r).is_ok());
        }
        prop_assert_eq!(a.free_bytes(), span);
        prop_assert_eq!(a.largest_hole(), span);
    }

    #[test]
    fn double_free_always_rejected(len in 1u64..0x4000) {
        let mut a = RegionAllocator::new(VirtAddr(0), 0x10_0000, 0x1000);
        let r = a.alloc(len).unwrap();
        a.free(r).unwrap();
        prop_assert!(a.free(r).is_err());
    }
}
