//! Memory-access fault taxonomy.

use std::fmt;

use crate::addr::VirtAddr;

/// The kind of memory access being attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain data load.
    Load,
    /// Plain data store.
    Store,
    /// Instruction fetch.
    Fetch,
    /// Capability (tagged) load — may trigger a CoPA fault.
    CapLoad,
    /// Capability (tagged) store — a store that sets a tag.
    CapStore,
}

impl AccessKind {
    /// True for the store-shaped accesses.
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::CapStore)
    }
}

/// A fault raised during address translation or permission checking.
///
/// The first three variants are *transparent*: the kernel's fault handler
/// resolves them by copying (and, for μFork, relocating) the page and
/// retrying. The rest are genuine errors delivered to the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Store hit a copy-on-write page.
    Cow { va: VirtAddr },
    /// Any access hit a copy-on-access page (μFork's CoA strategy).
    CoAccess { va: VirtAddr, kind: AccessKind },
    /// A capability load hit a page with the load-capability fault bit set
    /// (μFork's CoPA strategy, paper §4.2).
    CapLoad { va: VirtAddr },
    /// No mapping for the page.
    NotMapped { va: VirtAddr },
    /// The mapping exists but forbids this access.
    Protection { va: VirtAddr, kind: AccessKind },
}

impl Fault {
    /// True if the kernel can transparently resolve this fault by copying.
    pub const fn is_transparent(self) -> bool {
        matches!(
            self,
            Fault::Cow { .. } | Fault::CoAccess { .. } | Fault::CapLoad { .. }
        )
    }

    /// The faulting virtual address.
    pub const fn va(self) -> VirtAddr {
        match self {
            Fault::Cow { va }
            | Fault::CoAccess { va, .. }
            | Fault::CapLoad { va }
            | Fault::NotMapped { va }
            | Fault::Protection { va, .. } => va,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Cow { va } => write!(f, "copy-on-write fault at {va:?}"),
            Fault::CoAccess { va, kind } => {
                write!(f, "copy-on-access fault at {va:?} ({kind:?})")
            }
            Fault::CapLoad { va } => write!(f, "capability-load fault at {va:?}"),
            Fault::NotMapped { va } => write!(f, "page not mapped at {va:?}"),
            Fault::Protection { va, kind } => {
                write!(f, "protection fault at {va:?} ({kind:?})")
            }
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparency_classification() {
        let va = VirtAddr(0x1000);
        assert!(Fault::Cow { va }.is_transparent());
        assert!(Fault::CoAccess {
            va,
            kind: AccessKind::Load
        }
        .is_transparent());
        assert!(Fault::CapLoad { va }.is_transparent());
        assert!(!Fault::NotMapped { va }.is_transparent());
        assert!(!Fault::Protection {
            va,
            kind: AccessKind::Store
        }
        .is_transparent());
    }

    #[test]
    fn faulting_address_extraction() {
        let va = VirtAddr(0x2345);
        assert_eq!(Fault::NotMapped { va }.va(), va);
        assert_eq!(Fault::CapLoad { va }.va(), va);
    }

    #[test]
    fn store_classification() {
        assert!(AccessKind::Store.is_store());
        assert!(AccessKind::CapStore.is_store());
        assert!(!AccessKind::CapLoad.is_store());
        assert!(!AccessKind::Fetch.is_store());
    }
}
