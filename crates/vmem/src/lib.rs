//! Virtual memory for the μFork simulator.
//!
//! Provides the pieces both the μFork SASOS and the monolithic baseline
//! kernel build on:
//!
//! * [`VirtAddr`]/[`Vpn`] address arithmetic;
//! * [`PageTable`] mapping virtual pages to physical frames with
//!   [`PteFlags`] — including the CHERI **fault-on-capability-load** bit
//!   (`LC_FAULT`) that μFork's CoPA is implemented with (paper §4.2,
//!   "We implement CoPA using an additional page-table permission bit
//!   present with CHERI"), and the software `COW`/`COA` bits;
//! * a fault taxonomy ([`Fault`]) distinguishing *transparent* faults the
//!   kernel resolves by copying (CoW, CoA, capability-load) from genuine
//!   protection errors;
//! * a [`RegionAllocator`] carving contiguous μprocess regions out of the
//!   single address space (paper §3.7), with optional ASLR and
//!   fragmentation accounting (paper §6).

mod addr;
mod fault;
mod page_table;
mod region;
mod size_class;

pub use addr::{pages_covering, VirtAddr, Vpn};
pub use fault::{AccessKind, Fault};
pub use page_table::{PageTable, Pte, PteFlags};
pub use region::{Region, RegionAllocator, RegionError};
pub use size_class::SizeClassAllocator;
