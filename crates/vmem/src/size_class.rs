//! Size-class region allocation — the fragmentation mitigation the paper
//! sketches as future work (§6: "solutions including compacting the
//! virtual address space periodically or using size classes akin to
//! size-class memory allocators, can be explored").
//!
//! Region lengths are rounded up to powers of two and served from
//! per-class free lists carved out of the span on demand. Compared with
//! the first-fit [`crate::RegionAllocator`]:
//!
//! * frees of one class can always be reused by later allocations of the
//!   same class — long-running fork/exit churn cannot shatter the space;
//! * the cost is internal fragmentation (up to 2× per region) and the
//!   fact that memory carved for one class never serves another.

use crate::addr::VirtAddr;
use crate::region::{Region, RegionError};

/// Power-of-two size-class region allocator.
pub struct SizeClassAllocator {
    span: Region,
    /// Next unreserved byte in the span (classes carve from here).
    brk: u64,
    /// Free regions per class (class = log2 of the rounded length).
    free: Vec<Vec<u64>>,
    min_class: u32,
    /// Bytes handed out and not yet freed (rounded lengths).
    live_bytes: u64,
    /// Internal fragmentation: rounded-minus-requested of live regions.
    internal_waste: u64,
}

impl SizeClassAllocator {
    /// Manages `[base, base+len)` with a minimum region granularity.
    pub fn new(base: VirtAddr, len: u64, min_region: u64) -> SizeClassAllocator {
        let min_class = min_region.next_power_of_two().trailing_zeros();
        SizeClassAllocator {
            span: Region { base, len },
            brk: base.0,
            free: vec![Vec::new(); 64],
            min_class,
            live_bytes: 0,
            internal_waste: 0,
        }
    }

    fn class_of(&self, len: u64) -> u32 {
        len.next_power_of_two().trailing_zeros().max(self.min_class)
    }

    /// Allocates a region of at least `len` bytes.
    pub fn alloc(&mut self, len: u64) -> Result<Region, RegionError> {
        if len == 0 {
            return Err(RegionError::ZeroLength);
        }
        let class = self.class_of(len);
        let rounded = 1u64 << class;
        let base = if let Some(b) = self.free[class as usize].pop() {
            b
        } else {
            // Carve fresh space.
            if self.brk + rounded > self.span.top().0 {
                return Err(RegionError::NoSpace { requested: rounded });
            }
            let b = self.brk;
            self.brk += rounded;
            b
        };
        self.live_bytes += rounded;
        self.internal_waste += rounded - len;
        Ok(Region {
            base: VirtAddr(base),
            len: rounded,
        })
    }

    /// Frees a previously allocated region (its length must be the rounded
    /// length [`SizeClassAllocator::alloc`] returned).
    pub fn free(&mut self, region: Region) -> Result<(), RegionError> {
        if !region.len.is_power_of_two()
            || region.base.0 < self.span.base.0
            || region.top().0 > self.brk
        {
            return Err(RegionError::BadFree(region));
        }
        let class = region.len.trailing_zeros() as usize;
        if self.free[class].contains(&region.base.0) {
            return Err(RegionError::BadFree(region)); // double free
        }
        self.free[class].push(region.base.0);
        self.live_bytes = self.live_bytes.saturating_sub(region.len);
        Ok(())
    }

    /// Bytes that can still be allocated *for the worst-case class mix*:
    /// uncarved span plus all free-listed regions.
    pub fn free_bytes(&self) -> u64 {
        let carved_free: u64 = self
            .free
            .iter()
            .enumerate()
            .map(|(c, v)| (v.len() as u64) << c)
            .sum();
        (self.span.top().0 - self.brk) + carved_free
    }

    /// External fragmentation is structurally zero for same-class reuse:
    /// every freed region is exactly reusable. What remains is the
    /// *internal* waste ratio of live regions.
    pub fn internal_waste_ratio(&self) -> f64 {
        if self.live_bytes == 0 {
            0.0
        } else {
            self.internal_waste as f64 / self.live_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionAllocator;

    #[test]
    fn alloc_rounds_to_class_and_reuses() {
        let mut a = SizeClassAllocator::new(VirtAddr(0x1000), 1 << 24, 0x1000);
        let r1 = a.alloc(0x1800).unwrap(); // rounds to 0x2000
        assert_eq!(r1.len, 0x2000);
        a.free(r1).unwrap();
        let r2 = a.alloc(0x2000).unwrap();
        assert_eq!(r2.base, r1.base, "same-class free region is reused");
    }

    #[test]
    fn double_free_rejected() {
        let mut a = SizeClassAllocator::new(VirtAddr(0), 1 << 20, 0x1000);
        let r = a.alloc(0x1000).unwrap();
        a.free(r).unwrap();
        assert!(a.free(r).is_err());
    }

    #[test]
    fn exhaustion() {
        let mut a = SizeClassAllocator::new(VirtAddr(0), 0x4000, 0x1000);
        a.alloc(0x1000).unwrap();
        a.alloc(0x1000).unwrap();
        a.alloc(0x2000).unwrap();
        assert!(matches!(a.alloc(0x1000), Err(RegionError::NoSpace { .. })));
    }

    #[test]
    fn internal_waste_is_bounded_by_half() {
        let mut a = SizeClassAllocator::new(VirtAddr(0), 1 << 30, 0x1000);
        for len in [0x1001u64, 0x2fff, 0x5000, 0x1234] {
            a.alloc(len).unwrap();
        }
        assert!(a.internal_waste_ratio() < 0.5);
    }

    /// The scenario from paper §6: long-running churn of mixed-size
    /// regions. First-fit can reach a state where total free space is
    /// ample but no hole fits; size classes by construction cannot (for
    /// sizes already seen).
    #[test]
    fn churn_resists_fragmentation_better_than_first_fit() {
        let span = 1 << 22; // 4 MiB
        let mut ff = RegionAllocator::new(VirtAddr(0), span, 0x1000);
        let mut sc = SizeClassAllocator::new(VirtAddr(0), span, 0x1000);

        // Interleave small and large allocations, then free the smalls —
        // the classic fragmentation pattern.
        let mut ff_small = Vec::new();
        let mut ff_large = Vec::new();
        let mut sc_small = Vec::new();
        while let (Ok(s), Ok(l)) = (ff.alloc(0x1000), ff.alloc(0x3000)) {
            ff_small.push(s);
            ff_large.push(l);
            if let Ok(s) = sc.alloc(0x1000) {
                sc_small.push(s);
            }
            let _ = sc.alloc(0x3000);
        }
        for s in ff_small {
            ff.free(s).unwrap();
        }
        for s in sc_small {
            sc.free(s).unwrap();
        }
        // First-fit now has plenty of free bytes but shattered into
        // page-sized holes: a 2-page request fails.
        assert!(ff.free_bytes() >= 0x1000 * 100);
        assert!(ff.alloc(0x2000).is_err(), "first-fit fragmented");
        assert!(ff.fragmentation() > 0.9);
        // The size-class allocator reuses any freed small region for
        // small requests, and (here) still serves the request from its
        // own class list after coalescing-free behaviour.
        assert!(sc.alloc(0x1000).is_ok(), "size classes still serve");
    }
}
