//! Virtual address arithmetic.

use std::fmt;
use std::ops::{Add, Sub};

use ufork_mem::{GRANULE_SIZE, PAGE_SIZE};

/// A virtual address in the single 64-bit address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr(pub u64);

/// A virtual page number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vpn(pub u64);

impl VirtAddr {
    /// The containing virtual page.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 / PAGE_SIZE)
    }

    /// Byte offset within the page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Rounds down to the page boundary.
    pub const fn page_align_down(self) -> VirtAddr {
        VirtAddr(self.0 - self.0 % PAGE_SIZE)
    }

    /// Rounds up to the next page boundary (saturating).
    pub const fn page_align_up(self) -> VirtAddr {
        let rem = self.0 % PAGE_SIZE;
        if rem == 0 {
            self
        } else {
            VirtAddr(self.0.saturating_add(PAGE_SIZE - rem))
        }
    }

    /// True if aligned to a capability granule.
    pub const fn is_granule_aligned(self) -> bool {
        self.0.is_multiple_of(GRANULE_SIZE)
    }

    /// Rounds down to the granule boundary.
    pub const fn granule_align_down(self) -> VirtAddr {
        VirtAddr(self.0 - self.0 % GRANULE_SIZE)
    }
}

impl Vpn {
    /// First byte of the page.
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }

    /// The next page number.
    pub const fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA({:#x})", self.0)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

/// Iterates the page numbers covering the byte range `[start, start+len)`.
pub fn pages_covering(start: VirtAddr, len: u64) -> impl Iterator<Item = Vpn> {
    let first = start.vpn().0;
    let last = if len == 0 {
        first
    } else {
        VirtAddr(start.0 + len - 1).vpn().0 + 1
    };
    (first..last).map(Vpn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset() {
        let a = VirtAddr(0x1234);
        assert_eq!(a.vpn(), Vpn(1));
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.vpn().base(), VirtAddr(0x1000));
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(VirtAddr(0x1001).page_align_down(), VirtAddr(0x1000));
        assert_eq!(VirtAddr(0x1001).page_align_up(), VirtAddr(0x2000));
        assert_eq!(VirtAddr(0x2000).page_align_up(), VirtAddr(0x2000));
        assert!(VirtAddr(0x30).is_granule_aligned());
        assert!(!VirtAddr(0x31).is_granule_aligned());
        assert_eq!(VirtAddr(0x3f).granule_align_down(), VirtAddr(0x30));
    }

    #[test]
    fn pages_covering_ranges() {
        let pages: Vec<Vpn> = pages_covering(VirtAddr(0x1ff0), 0x20).collect();
        assert_eq!(pages, vec![Vpn(1), Vpn(2)]);
        let single: Vec<Vpn> = pages_covering(VirtAddr(0x1000), 1).collect();
        assert_eq!(single, vec![Vpn(1)]);
        let empty: Vec<Vpn> = pages_covering(VirtAddr(0x1000), 0).collect();
        assert!(empty.is_empty());
        let exact: Vec<Vpn> = pages_covering(VirtAddr(0x1000), PAGE_SIZE).collect();
        assert_eq!(exact, vec![Vpn(1)]);
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(VirtAddr(0x1000) + 0x10, VirtAddr(0x1010));
        assert_eq!(VirtAddr(0x1010) - VirtAddr(0x1000), 0x10);
    }
}
