//! Contiguous μprocess region allocation within the single address space.
//!
//! In a μFork system, "each μprocess is loaded in a contiguous area of the
//! virtual address space" (paper §3.7), so intra-address-space isolation
//! can use simple contiguous bounds. This module manages those areas with
//! a first-fit hole allocator, optional ASLR (randomizing the base offset
//! of each region, paper §3.7), and fragmentation accounting (paper §6).

use std::fmt;

use crate::addr::VirtAddr;

/// A contiguous region of the virtual address space.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// One byte past the end.
    pub const fn top(&self) -> VirtAddr {
        VirtAddr(self.base.0 + self.len)
    }

    /// True if `va` lies within the region.
    pub const fn contains(&self, va: VirtAddr) -> bool {
        va.0 >= self.base.0 && va.0 < self.base.0 + self.len
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region[{:#x}..{:#x})", self.base.0, self.top().0)
    }
}

/// Errors from the region allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionError {
    /// No hole large enough for the request (possibly due to
    /// fragmentation: check [`RegionAllocator::largest_hole`] vs
    /// [`RegionAllocator::free_bytes`]).
    NoSpace { requested: u64 },
    /// Freed region does not match an allocation.
    BadFree(Region),
    /// Zero-length request.
    ZeroLength,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::NoSpace { requested } => {
                write!(f, "no contiguous hole of {requested:#x} bytes")
            }
            RegionError::BadFree(r) => write!(f, "bad free of {r:?}"),
            RegionError::ZeroLength => write!(f, "zero-length region request"),
        }
    }
}

impl std::error::Error for RegionError {}

/// First-fit allocator of contiguous regions with coalescing free.
///
/// Holes are kept sorted by base address. When ASLR is enabled
/// ([`RegionAllocator::set_aslr_seed`]), allocation adds a random
/// page-aligned offset inside the chosen hole, randomizing each μprocess's
/// base address as sketched in paper §3.7.
pub struct RegionAllocator {
    span: Region,
    holes: Vec<Region>,
    aslr: Option<u64>, // xorshift state
    align: u64,
}

impl RegionAllocator {
    /// Manages `[base, base+len)` with the given allocation alignment.
    pub fn new(base: VirtAddr, len: u64, align: u64) -> RegionAllocator {
        assert!(align.is_power_of_two());
        RegionAllocator {
            span: Region { base, len },
            holes: vec![Region { base, len }],
            aslr: None,
            align,
        }
    }

    /// Enables ASLR with the given seed (deterministic for tests).
    pub fn set_aslr_seed(&mut self, seed: u64) {
        // splitmix64 finalizer so that nearby seeds diverge.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.aslr = Some((z ^ (z >> 31)) | 1);
    }

    /// Disables ASLR.
    pub fn disable_aslr(&mut self) {
        self.aslr = None;
    }

    /// The full span managed by this allocator.
    pub fn span(&self) -> Region {
        self.span
    }

    /// Total free bytes across all holes.
    pub fn free_bytes(&self) -> u64 {
        self.holes.iter().map(|h| h.len).sum()
    }

    /// Size of the largest hole (0 when full).
    pub fn largest_hole(&self) -> u64 {
        self.holes.iter().map(|h| h.len).max().unwrap_or(0)
    }

    /// External fragmentation: `1 - largest_hole / free_bytes` (0 when
    /// free space is one hole; → 1 as free space shatters).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            0.0
        } else {
            1.0 - self.largest_hole() as f64 / free as f64
        }
    }

    /// Allocates a region of at least `len` bytes.
    pub fn alloc(&mut self, len: u64) -> Result<Region, RegionError> {
        if len == 0 {
            return Err(RegionError::ZeroLength);
        }
        let len = len.div_ceil(self.align) * self.align;
        let idx = self
            .holes
            .iter()
            .position(|h| h.len >= len)
            .ok_or(RegionError::NoSpace { requested: len })?;
        let hole = self.holes[idx];
        // ASLR: slide the allocation within the hole by a random multiple
        // of the alignment.
        let slack = (hole.len - len) / self.align;
        let offset = match (&mut self.aslr, slack) {
            (Some(state), s) if s > 0 => {
                // xorshift64*
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (s + 1)) * self.align
            }
            _ => 0,
        };
        let region = Region {
            base: VirtAddr(hole.base.0 + offset),
            len,
        };
        // Replace the hole with up to two remainder holes.
        self.holes.remove(idx);
        let before = Region {
            base: hole.base,
            len: offset,
        };
        let after = Region {
            base: region.top(),
            len: hole.top().0 - region.top().0,
        };
        let mut insert_at = idx;
        if before.len > 0 {
            self.holes.insert(insert_at, before);
            insert_at += 1;
        }
        if after.len > 0 {
            self.holes.insert(insert_at, after);
        }
        Ok(region)
    }

    /// Frees a previously allocated region, coalescing adjacent holes.
    pub fn free(&mut self, region: Region) -> Result<(), RegionError> {
        if region.len == 0
            || region.base.0 < self.span.base.0
            || region.top().0 > self.span.top().0
            || self
                .holes
                .iter()
                .any(|h| region.base.0 < h.top().0 && h.base.0 < region.top().0)
        {
            return Err(RegionError::BadFree(region));
        }
        let pos = self
            .holes
            .iter()
            .position(|h| h.base.0 > region.base.0)
            .unwrap_or(self.holes.len());
        self.holes.insert(pos, region);
        // Coalesce around `pos`.
        if pos + 1 < self.holes.len() && self.holes[pos].top() == self.holes[pos + 1].base {
            self.holes[pos].len += self.holes[pos + 1].len;
            self.holes.remove(pos + 1);
        }
        if pos > 0 && self.holes[pos - 1].top() == self.holes[pos].base {
            self.holes[pos - 1].len += self.holes[pos].len;
            self.holes.remove(pos);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_at(a: &mut RegionAllocator, len: u64) -> Region {
        a.alloc(len).unwrap()
    }

    #[test]
    fn alloc_free_coalesce() {
        let mut a = RegionAllocator::new(VirtAddr(0x10000), 0x10000, 0x1000);
        let r1 = alloc_at(&mut a, 0x1000);
        let r2 = alloc_at(&mut a, 0x1000);
        let r3 = alloc_at(&mut a, 0x1000);
        assert_eq!(r1.top(), r2.base);
        assert_eq!(a.free_bytes(), 0x10000 - 0x3000);
        a.free(r2).unwrap();
        assert!(a.fragmentation() > 0.0);
        a.free(r1).unwrap();
        a.free(r3).unwrap();
        assert_eq!(a.free_bytes(), 0x10000);
        assert_eq!(a.largest_hole(), 0x10000);
        assert_eq!(a.fragmentation(), 0.0);
    }

    #[test]
    fn alignment_rounds_up() {
        let mut a = RegionAllocator::new(VirtAddr(0), 0x10000, 0x1000);
        let r = alloc_at(&mut a, 1);
        assert_eq!(r.len, 0x1000);
    }

    #[test]
    fn exhaustion_and_fragmentation() {
        let mut a = RegionAllocator::new(VirtAddr(0), 0x4000, 0x1000);
        let r1 = alloc_at(&mut a, 0x1000);
        let _r2 = alloc_at(&mut a, 0x1000);
        let r3 = alloc_at(&mut a, 0x1000);
        let _r4 = alloc_at(&mut a, 0x1000);
        a.free(r1).unwrap();
        a.free(r3).unwrap();
        // 2 pages free but no 2-page hole.
        assert_eq!(a.free_bytes(), 0x2000);
        assert_eq!(a.largest_hole(), 0x1000);
        assert!(matches!(a.alloc(0x2000), Err(RegionError::NoSpace { .. })));
        assert!((a.fragmentation() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bad_frees_rejected() {
        let mut a = RegionAllocator::new(VirtAddr(0x1000), 0x4000, 0x1000);
        let r = alloc_at(&mut a, 0x1000);
        // Double free.
        a.free(r).unwrap();
        assert!(a.free(r).is_err());
        // Out of span.
        assert!(a
            .free(Region {
                base: VirtAddr(0),
                len: 0x1000
            })
            .is_err());
    }

    #[test]
    fn aslr_randomizes_bases_but_stays_in_span() {
        let mut a = RegionAllocator::new(VirtAddr(0), 1 << 30, 0x1000);
        a.set_aslr_seed(42);
        let r1 = alloc_at(&mut a, 0x1000);
        let mut b = RegionAllocator::new(VirtAddr(0), 1 << 30, 0x1000);
        b.set_aslr_seed(43);
        let r2 = alloc_at(&mut b, 0x1000);
        assert_ne!(
            r1.base, r2.base,
            "different seeds should give different bases"
        );
        assert!(a.span().contains(r1.base));
        assert_eq!(r1.base.0 % 0x1000, 0);
        // Free works with ASLR-placed regions too.
        a.free(r1).unwrap();
        assert_eq!(a.free_bytes(), 1 << 30);
    }

    #[test]
    fn zero_len_rejected() {
        let mut a = RegionAllocator::new(VirtAddr(0), 0x1000, 0x1000);
        assert_eq!(a.alloc(0), Err(RegionError::ZeroLength));
    }

    #[test]
    fn region_contains() {
        let r = Region {
            base: VirtAddr(0x1000),
            len: 0x1000,
        };
        assert!(r.contains(VirtAddr(0x1000)));
        assert!(r.contains(VirtAddr(0x1fff)));
        assert!(!r.contains(VirtAddr(0x2000)));
        assert!(!r.contains(VirtAddr(0xfff)));
    }
}
