//! Page tables and PTE flags.

use std::collections::BTreeMap;
use std::fmt;

use ufork_mem::Pfn;

use crate::addr::{VirtAddr, Vpn};
use crate::fault::{AccessKind, Fault};

/// Page-table entry flags.
///
/// `READ`/`WRITE`/`EXEC` are the usual permissions. The remaining bits
/// drive the μFork copy strategies:
///
/// * `LC_FAULT` — the CHERI *fault on capability load* page-permission bit
///   (paper §4.2). Plain loads succeed; loading a **tagged** granule
///   faults, so the kernel can copy + relocate before a stale parent
///   capability reaches the child (CoPA).
/// * `COW` — software bit: page is shared, copy on first store.
/// * `COA` — software bit: page is shared and *inaccessible*; copy on any
///   access (CoA strategy).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Loads permitted.
    pub const READ: PteFlags = PteFlags(1 << 0);
    /// Stores permitted.
    pub const WRITE: PteFlags = PteFlags(1 << 1);
    /// Instruction fetch permitted.
    pub const EXEC: PteFlags = PteFlags(1 << 2);
    /// Fault on loading a tagged (capability) granule.
    pub const LC_FAULT: PteFlags = PteFlags(1 << 3);
    /// Copy-on-write (software).
    pub const COW: PteFlags = PteFlags(1 << 4);
    /// Copy-on-access (software): all accesses fault.
    pub const COA: PteFlags = PteFlags(1 << 5);

    /// No flags.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// Read + write.
    pub const fn rw() -> PteFlags {
        PteFlags(PteFlags::READ.0 | PteFlags::WRITE.0)
    }

    /// Read + exec.
    pub const fn rx() -> PteFlags {
        PteFlags(PteFlags::READ.0 | PteFlags::EXEC.0)
    }

    /// Read only.
    pub const fn ro() -> PteFlags {
        PteFlags::READ
    }

    /// True if every bit of `other` is set.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union.
    pub const fn with(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Difference (clears `other`'s bits).
    pub const fn without(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (PteFlags::READ, "R"),
            (PteFlags::WRITE, "W"),
            (PteFlags::EXEC, "X"),
            (PteFlags::LC_FAULT, "LC"),
            (PteFlags::COW, "CoW"),
            (PteFlags::COA, "CoA"),
        ];
        write!(f, "[")?;
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

/// A page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// Backing physical frame.
    pub pfn: Pfn,
    /// Permission and strategy flags.
    pub flags: PteFlags,
}

/// A page table: virtual page → [`Pte`].
///
/// μFork keeps exactly one (the single address space); the monolithic
/// baseline keeps one per process. The representation is a sorted map
/// rather than a radix tree — translation cost is charged by the
/// simulation cost model, not by host data-structure choice.
#[derive(Default)]
pub struct PageTable {
    entries: BTreeMap<Vpn, Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps `vpn` to `pfn` with `flags`, replacing any existing mapping.
    ///
    /// Returns the previous entry if one existed.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, flags: PteFlags) -> Option<Pte> {
        self.entries.insert(vpn, Pte { pfn, flags })
    }

    /// Removes the mapping for `vpn`.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Looks up the entry for `vpn`.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.get(&vpn).copied()
    }

    /// Mutable access to the entry for `vpn`.
    pub fn lookup_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates mappings with page numbers in `[start, end)`.
    pub fn range(&self, start: Vpn, end: Vpn) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.range(start..end).map(|(v, p)| (*v, *p))
    }

    /// Iterates all mappings in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.iter().map(|(v, p)| (*v, *p))
    }

    /// Translates an access, enforcing PTE flags and copy-strategy bits.
    ///
    /// On success returns the backing frame; the byte offset within it is
    /// `va.page_offset()`. Transparent faults ([`Fault::is_transparent`])
    /// must be resolved by the kernel's fault handler, after which the
    /// access is retried.
    ///
    /// `tagged` reports whether a `CapLoad` access would actually read a
    /// tagged granule; the hardware only raises an `LC_FAULT` fault when
    /// the loaded granule's tag is set. Callers that don't know yet may
    /// pass `true` conservatively.
    pub fn translate(&self, va: VirtAddr, kind: AccessKind, tagged: bool) -> Result<Pte, Fault> {
        let pte = self.lookup(va.vpn()).ok_or(Fault::NotMapped { va })?;
        let f = pte.flags;
        if f.contains(PteFlags::COA) {
            return Err(Fault::CoAccess { va, kind });
        }
        match kind {
            AccessKind::Load => {
                if !f.contains(PteFlags::READ) {
                    return Err(Fault::Protection { va, kind });
                }
            }
            AccessKind::CapLoad => {
                if !f.contains(PteFlags::READ) {
                    return Err(Fault::Protection { va, kind });
                }
                if f.contains(PteFlags::LC_FAULT) && tagged {
                    return Err(Fault::CapLoad { va });
                }
            }
            AccessKind::Store | AccessKind::CapStore => {
                if f.contains(PteFlags::COW) {
                    return Err(Fault::Cow { va });
                }
                if !f.contains(PteFlags::WRITE) {
                    return Err(Fault::Protection { va, kind });
                }
            }
            AccessKind::Fetch => {
                if !f.contains(PteFlags::EXEC) {
                    return Err(Fault::Protection { va, kind });
                }
            }
        }
        Ok(pte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VirtAddr {
        VirtAddr(x)
    }

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        assert_eq!(pt.map(Vpn(1), Pfn(7), PteFlags::rw()), None);
        assert_eq!(pt.lookup(Vpn(1)).unwrap().pfn, Pfn(7));
        assert_eq!(pt.len(), 1);
        let old = pt.map(Vpn(1), Pfn(8), PteFlags::ro()).unwrap();
        assert_eq!(old.pfn, Pfn(7));
        assert_eq!(pt.unmap(Vpn(1)).unwrap().pfn, Pfn(8));
        assert!(pt.lookup(Vpn(1)).is_none());
    }

    #[test]
    fn translate_basic_permissions() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::ro());
        assert!(pt.translate(va(0x1000), AccessKind::Load, false).is_ok());
        assert_eq!(
            pt.translate(va(0x1000), AccessKind::Store, false)
                .unwrap_err(),
            Fault::Protection {
                va: va(0x1000),
                kind: AccessKind::Store
            }
        );
        assert_eq!(
            pt.translate(va(0x1000), AccessKind::Fetch, false)
                .unwrap_err(),
            Fault::Protection {
                va: va(0x1000),
                kind: AccessKind::Fetch
            }
        );
        assert_eq!(
            pt.translate(va(0x5000), AccessKind::Load, false)
                .unwrap_err(),
            Fault::NotMapped { va: va(0x5000) }
        );
    }

    #[test]
    fn cow_faults_only_on_store() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::ro().with(PteFlags::COW));
        assert!(pt.translate(va(0x1000), AccessKind::Load, false).is_ok());
        assert_eq!(
            pt.translate(va(0x1008), AccessKind::Store, false)
                .unwrap_err(),
            Fault::Cow { va: va(0x1008) }
        );
        assert_eq!(
            pt.translate(va(0x1008), AccessKind::CapStore, false)
                .unwrap_err(),
            Fault::Cow { va: va(0x1008) }
        );
    }

    #[test]
    fn coa_faults_on_everything() {
        let mut pt = PageTable::new();
        pt.map(Vpn(2), Pfn(2), PteFlags::empty().with(PteFlags::COA));
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::CapLoad] {
            assert_eq!(
                pt.translate(va(0x2000), kind, false).unwrap_err(),
                Fault::CoAccess {
                    va: va(0x2000),
                    kind
                }
            );
        }
    }

    #[test]
    fn lc_fault_only_for_tagged_cap_loads() {
        let mut pt = PageTable::new();
        pt.map(Vpn(3), Pfn(3), PteFlags::ro().with(PteFlags::LC_FAULT));
        // Plain data load: fine.
        assert!(pt.translate(va(0x3000), AccessKind::Load, false).is_ok());
        // Capability load of an untagged granule: fine (reads data bytes).
        assert!(pt.translate(va(0x3000), AccessKind::CapLoad, false).is_ok());
        // Capability load of a tagged granule: faults.
        assert_eq!(
            pt.translate(va(0x3000), AccessKind::CapLoad, true)
                .unwrap_err(),
            Fault::CapLoad { va: va(0x3000) }
        );
    }

    #[test]
    fn range_iteration() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map(Vpn(i), Pfn(i as u32), PteFlags::rw());
        }
        let got: Vec<u64> = pt.range(Vpn(3), Vpn(6)).map(|(v, _)| v.0).collect();
        assert_eq!(got, vec![3, 4, 5]);
        assert_eq!(pt.iter().count(), 10);
    }

    #[test]
    fn flags_set_operations() {
        let f = PteFlags::rw().with(PteFlags::COW);
        assert!(f.contains(PteFlags::COW));
        let g = f.without(PteFlags::COW);
        assert!(!g.contains(PteFlags::COW));
        assert!(g.contains(PteFlags::WRITE));
        assert_eq!(format!("{:?}", PteFlags::rx()), "[R,X]");
    }
}
