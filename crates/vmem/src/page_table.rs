//! Page tables and PTE flags.

use std::collections::BTreeMap;
use std::fmt;

use ufork_mem::Pfn;

use crate::addr::{VirtAddr, Vpn};
use crate::fault::{AccessKind, Fault};

/// Page-table entry flags.
///
/// `READ`/`WRITE`/`EXEC` are the usual permissions. The remaining bits
/// drive the μFork copy strategies:
///
/// * `LC_FAULT` — the CHERI *fault on capability load* page-permission bit
///   (paper §4.2). Plain loads succeed; loading a **tagged** granule
///   faults, so the kernel can copy + relocate before a stale parent
///   capability reaches the child (CoPA).
/// * `COW` — software bit: page is shared, copy on first store.
/// * `COA` — software bit: page is shared and *inaccessible*; copy on any
///   access (CoA strategy).
/// * `DIRTY` — software soft-dirty bit: set by the kernel's fault handler
///   on the first write fault after a fork-generation stamp, cleared by
///   the next stamp. Together with [`Pte::gen`] it lets repeated forks
///   copy only pages written since the previous fork (`O(dirty)` snapshot
///   trains) instead of the whole address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Loads permitted.
    pub const READ: PteFlags = PteFlags(1 << 0);
    /// Stores permitted.
    pub const WRITE: PteFlags = PteFlags(1 << 1);
    /// Instruction fetch permitted.
    pub const EXEC: PteFlags = PteFlags(1 << 2);
    /// Fault on loading a tagged (capability) granule.
    pub const LC_FAULT: PteFlags = PteFlags(1 << 3);
    /// Copy-on-write (software).
    pub const COW: PteFlags = PteFlags(1 << 4);
    /// Copy-on-access (software): all accesses fault.
    pub const COA: PteFlags = PteFlags(1 << 5);
    /// Soft-dirty (software): written since the last generation stamp.
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// Shared-memory mapping (software): fork refcount-shares the frame
    /// instead of copying or arming CoW/CoA, and writes never dirty-copy.
    pub const SHARED: PteFlags = PteFlags(1 << 7);

    /// No flags.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// Read + write.
    pub const fn rw() -> PteFlags {
        PteFlags(PteFlags::READ.0 | PteFlags::WRITE.0)
    }

    /// Read + exec.
    pub const fn rx() -> PteFlags {
        PteFlags(PteFlags::READ.0 | PteFlags::EXEC.0)
    }

    /// Read only.
    pub const fn ro() -> PteFlags {
        PteFlags::READ
    }

    /// True if every bit of `other` is set.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union.
    pub const fn with(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Difference (clears `other`'s bits).
    pub const fn without(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (PteFlags::READ, "R"),
            (PteFlags::WRITE, "W"),
            (PteFlags::EXEC, "X"),
            (PteFlags::LC_FAULT, "LC"),
            (PteFlags::COW, "CoW"),
            (PteFlags::COA, "CoA"),
            (PteFlags::DIRTY, "D"),
            (PteFlags::SHARED, "Sh"),
        ];
        write!(f, "[")?;
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

/// A page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// Backing physical frame.
    pub pfn: Pfn,
    /// Permission and strategy flags.
    pub flags: PteFlags,
    /// Fork-generation stamp. `0` means "never stamped": every fresh
    /// mapping — [`PageTable::map`], fault-time remaps — starts at 0, so
    /// a page is *clean with respect to generation `g`* only when a stamp
    /// sweep explicitly set `gen == g` and nothing remapped it since.
    /// A dirty-scoped fork treats `gen != g || DIRTY` as dirty.
    pub gen: u32,
}

impl Pte {
    /// A fresh (never-stamped) entry.
    pub fn new(pfn: Pfn, flags: PteFlags) -> Pte {
        Pte { pfn, flags, gen: 0 }
    }
}

/// A page table: virtual page → [`Pte`].
///
/// μFork keeps exactly one (the single address space); the monolithic
/// baseline keeps one per process. The representation is a sorted map
/// rather than a radix tree — translation cost is charged by the
/// simulation cost model, not by host data-structure choice.
#[derive(Default)]
pub struct PageTable {
    entries: BTreeMap<Vpn, Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps `vpn` to `pfn` with `flags`, replacing any existing mapping.
    /// The new entry's generation stamp is reset to 0 (never stamped), so
    /// remapped pages are conservatively dirty for dirty-scoped forks.
    ///
    /// Returns the previous entry if one existed.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, flags: PteFlags) -> Option<Pte> {
        self.entries.insert(vpn, Pte::new(pfn, flags))
    }

    /// Removes the mapping for `vpn`.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Looks up the entry for `vpn`.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.get(&vpn).copied()
    }

    /// Mutable access to the entry for `vpn`.
    pub fn lookup_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates mappings with page numbers in `[start, end)`.
    pub fn range(&self, start: Vpn, end: Vpn) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.range(start..end).map(|(v, p)| (*v, *p))
    }

    /// Bulk-inserts a batch of mappings, replacing any existing ones.
    ///
    /// The batch is typically produced in ascending page order (e.g. by
    /// walking [`PageTable::range`] of another region), which is the
    /// cache-friendly insertion order for the underlying sorted map; the
    /// call is correct for any order. Returns the number of entries
    /// inserted. This is the batched half of the fork walk: the child's
    /// PTEs are staged in a `Vec` and land in the table in one sweep,
    /// instead of one `map` per page interleaved with frame copies.
    pub fn extend_sorted(&mut self, batch: impl IntoIterator<Item = (Vpn, Pte)>) -> u64 {
        let before = self.entries.len();
        let mut n = 0u64;
        for (vpn, pte) in batch {
            self.entries.insert(vpn, pte);
            n += 1;
        }
        debug_assert!(self.entries.len() - before <= n as usize);
        n
    }

    /// Maps `frames` to consecutive pages starting at `start`, all with
    /// `flags`. Returns the number of pages mapped.
    pub fn map_range(
        &mut self,
        start: Vpn,
        frames: impl IntoIterator<Item = Pfn>,
        flags: PteFlags,
    ) -> u64 {
        self.extend_sorted(
            frames
                .into_iter()
                .enumerate()
                .map(|(i, pfn)| (Vpn(start.0 + i as u64), Pte::new(pfn, flags))),
        )
    }

    /// Stamps every listed page that is mapped with generation `gen`,
    /// clearing its soft-dirty bit and — for writable pages — arming
    /// copy-on-write so the *next* store faults and re-dirties it.
    /// Returns the number of entries stamped. This is the batched
    /// generation sweep a dirty-tracking fork runs over the parent's
    /// pages; the caller journals the per-page pre-state for rollback.
    pub fn stamp_many(&mut self, vpns: impl IntoIterator<Item = Vpn>, gen: u32) -> u64 {
        let mut n = 0u64;
        for vpn in vpns {
            if let Some(pte) = self.entries.get_mut(&vpn) {
                pte.gen = gen;
                pte.flags = pte.flags.without(PteFlags::DIRTY);
                if pte.flags.contains(PteFlags::WRITE) {
                    pte.flags = pte.flags.with(PteFlags::COW);
                }
                n += 1;
            }
        }
        n
    }

    /// Removes every mapping with page number in `[start, end)` and
    /// returns the removed entries in address order.
    ///
    /// Cost is O(span · log n) in the *removed* span only. The earlier
    /// `split_off`/`extend` formulation re-inserted every entry above
    /// `end`, which made teardown of one region linear in the whole
    /// address space — quadratic across a 10k-process fork storm.
    pub fn unmap_range(&mut self, start: Vpn, end: Vpn) -> Vec<(Vpn, Pte)> {
        if start >= end {
            return Vec::new();
        }
        let span: Vec<Vpn> = self.entries.range(start..end).map(|(v, _)| *v).collect();
        span.into_iter()
            .map(|v| {
                let pte = self.entries.remove(&v).expect("vpn from range scan");
                (v, pte)
            })
            .collect()
    }

    /// ORs `add` into the flags of every listed page that is mapped.
    ///
    /// Returns the number of entries updated. This is the batched COW
    /// protection sweep fork uses on the parent's writable pages — one
    /// traversal instead of a `lookup_mut` per page.
    pub fn protect_many(&mut self, vpns: impl IntoIterator<Item = Vpn>, add: PteFlags) -> u64 {
        let mut n = 0u64;
        for vpn in vpns {
            if let Some(pte) = self.entries.get_mut(&vpn) {
                pte.flags = pte.flags.with(add);
                n += 1;
            }
        }
        n
    }

    /// Iterates all mappings in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.iter().map(|(v, p)| (*v, *p))
    }

    /// Translates an access, enforcing PTE flags and copy-strategy bits.
    ///
    /// On success returns the backing frame; the byte offset within it is
    /// `va.page_offset()`. Transparent faults ([`Fault::is_transparent`])
    /// must be resolved by the kernel's fault handler, after which the
    /// access is retried.
    ///
    /// `tagged` reports whether a `CapLoad` access would actually read a
    /// tagged granule; the hardware only raises an `LC_FAULT` fault when
    /// the loaded granule's tag is set. Callers that don't know yet may
    /// pass `true` conservatively.
    pub fn translate(&self, va: VirtAddr, kind: AccessKind, tagged: bool) -> Result<Pte, Fault> {
        let pte = self.lookup(va.vpn()).ok_or(Fault::NotMapped { va })?;
        let f = pte.flags;
        if f.contains(PteFlags::COA) {
            return Err(Fault::CoAccess { va, kind });
        }
        match kind {
            AccessKind::Load => {
                if !f.contains(PteFlags::READ) {
                    return Err(Fault::Protection { va, kind });
                }
            }
            AccessKind::CapLoad => {
                if !f.contains(PteFlags::READ) {
                    return Err(Fault::Protection { va, kind });
                }
                if f.contains(PteFlags::LC_FAULT) && tagged {
                    return Err(Fault::CapLoad { va });
                }
            }
            AccessKind::Store | AccessKind::CapStore => {
                if f.contains(PteFlags::COW) {
                    return Err(Fault::Cow { va });
                }
                if !f.contains(PteFlags::WRITE) {
                    return Err(Fault::Protection { va, kind });
                }
            }
            AccessKind::Fetch => {
                if !f.contains(PteFlags::EXEC) {
                    return Err(Fault::Protection { va, kind });
                }
            }
        }
        Ok(pte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VirtAddr {
        VirtAddr(x)
    }

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        assert_eq!(pt.map(Vpn(1), Pfn(7), PteFlags::rw()), None);
        assert_eq!(pt.lookup(Vpn(1)).unwrap().pfn, Pfn(7));
        assert_eq!(pt.len(), 1);
        let old = pt.map(Vpn(1), Pfn(8), PteFlags::ro()).unwrap();
        assert_eq!(old.pfn, Pfn(7));
        assert_eq!(pt.unmap(Vpn(1)).unwrap().pfn, Pfn(8));
        assert!(pt.lookup(Vpn(1)).is_none());
    }

    #[test]
    fn translate_basic_permissions() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::ro());
        assert!(pt.translate(va(0x1000), AccessKind::Load, false).is_ok());
        assert_eq!(
            pt.translate(va(0x1000), AccessKind::Store, false)
                .unwrap_err(),
            Fault::Protection {
                va: va(0x1000),
                kind: AccessKind::Store
            }
        );
        assert_eq!(
            pt.translate(va(0x1000), AccessKind::Fetch, false)
                .unwrap_err(),
            Fault::Protection {
                va: va(0x1000),
                kind: AccessKind::Fetch
            }
        );
        assert_eq!(
            pt.translate(va(0x5000), AccessKind::Load, false)
                .unwrap_err(),
            Fault::NotMapped { va: va(0x5000) }
        );
    }

    #[test]
    fn cow_faults_only_on_store() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::ro().with(PteFlags::COW));
        assert!(pt.translate(va(0x1000), AccessKind::Load, false).is_ok());
        assert_eq!(
            pt.translate(va(0x1008), AccessKind::Store, false)
                .unwrap_err(),
            Fault::Cow { va: va(0x1008) }
        );
        assert_eq!(
            pt.translate(va(0x1008), AccessKind::CapStore, false)
                .unwrap_err(),
            Fault::Cow { va: va(0x1008) }
        );
    }

    #[test]
    fn coa_faults_on_everything() {
        let mut pt = PageTable::new();
        pt.map(Vpn(2), Pfn(2), PteFlags::empty().with(PteFlags::COA));
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::CapLoad] {
            assert_eq!(
                pt.translate(va(0x2000), kind, false).unwrap_err(),
                Fault::CoAccess {
                    va: va(0x2000),
                    kind
                }
            );
        }
    }

    #[test]
    fn lc_fault_only_for_tagged_cap_loads() {
        let mut pt = PageTable::new();
        pt.map(Vpn(3), Pfn(3), PteFlags::ro().with(PteFlags::LC_FAULT));
        // Plain data load: fine.
        assert!(pt.translate(va(0x3000), AccessKind::Load, false).is_ok());
        // Capability load of an untagged granule: fine (reads data bytes).
        assert!(pt.translate(va(0x3000), AccessKind::CapLoad, false).is_ok());
        // Capability load of a tagged granule: faults.
        assert_eq!(
            pt.translate(va(0x3000), AccessKind::CapLoad, true)
                .unwrap_err(),
            Fault::CapLoad { va: va(0x3000) }
        );
    }

    #[test]
    fn range_iteration() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map(Vpn(i), Pfn(i as u32), PteFlags::rw());
        }
        let got: Vec<u64> = pt.range(Vpn(3), Vpn(6)).map(|(v, _)| v.0).collect();
        assert_eq!(got, vec![3, 4, 5]);
        assert_eq!(pt.iter().count(), 10);
    }

    #[test]
    fn extend_sorted_inserts_batch() {
        let mut pt = PageTable::new();
        pt.map(Vpn(5), Pfn(99), PteFlags::ro()); // will be replaced
        let batch = (3..8).map(|i| (Vpn(i), Pte::new(Pfn(i as u32), PteFlags::rw())));
        assert_eq!(pt.extend_sorted(batch), 5);
        assert_eq!(pt.len(), 5);
        assert_eq!(pt.lookup(Vpn(5)).unwrap().pfn, Pfn(5));
        assert_eq!(pt.lookup(Vpn(5)).unwrap().flags, PteFlags::rw());
    }

    #[test]
    fn map_range_consecutive_pages() {
        let mut pt = PageTable::new();
        let n = pt.map_range(Vpn(10), [Pfn(1), Pfn(2), Pfn(3)], PteFlags::rx());
        assert_eq!(n, 3);
        assert_eq!(pt.lookup(Vpn(10)).unwrap().pfn, Pfn(1));
        assert_eq!(pt.lookup(Vpn(12)).unwrap().pfn, Pfn(3));
        assert!(pt.lookup(Vpn(13)).is_none());
    }

    #[test]
    fn unmap_range_removes_and_returns_span() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map(Vpn(i), Pfn(i as u32), PteFlags::rw());
        }
        let removed = pt.unmap_range(Vpn(3), Vpn(7));
        assert_eq!(
            removed.iter().map(|(v, _)| v.0).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(pt.len(), 6);
        assert!(pt.lookup(Vpn(3)).is_none());
        assert!(pt.lookup(Vpn(2)).is_some());
        assert!(pt.lookup(Vpn(7)).is_some());
        // Empty and inverted ranges are no-ops.
        assert!(pt.unmap_range(Vpn(20), Vpn(30)).is_empty());
        assert!(pt.unmap_range(Vpn(5), Vpn(5)).is_empty());
        assert_eq!(pt.len(), 6);
    }

    #[test]
    fn protect_many_ors_flags() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::rw());
        pt.map(Vpn(2), Pfn(2), PteFlags::ro());
        // Vpn(9) is unmapped: skipped, not counted.
        let n = pt.protect_many([Vpn(1), Vpn(2), Vpn(9)], PteFlags::COW);
        assert_eq!(n, 2);
        assert!(pt.lookup(Vpn(1)).unwrap().flags.contains(PteFlags::COW));
        assert!(pt.lookup(Vpn(2)).unwrap().flags.contains(PteFlags::COW));
        assert!(pt.lookup(Vpn(2)).unwrap().flags.contains(PteFlags::READ));
    }

    #[test]
    fn map_resets_generation_stamp() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::rw());
        assert_eq!(pt.lookup(Vpn(1)).unwrap().gen, 0);
        assert_eq!(pt.stamp_many([Vpn(1)], 3), 1);
        assert_eq!(pt.lookup(Vpn(1)).unwrap().gen, 3);
        // A remap (fault resolution, mmap reuse) is conservatively dirty.
        pt.map(Vpn(1), Pfn(2), PteFlags::rw());
        assert_eq!(pt.lookup(Vpn(1)).unwrap().gen, 0);
    }

    #[test]
    fn stamp_many_clears_dirty_and_arms_cow_on_writable() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::rw().with(PteFlags::DIRTY));
        pt.map(Vpn(2), Pfn(2), PteFlags::ro()); // read-only: no COW needed
        pt.map(Vpn(3), Pfn(3), PteFlags::rw().with(PteFlags::COW)); // already armed
        assert_eq!(pt.stamp_many([Vpn(1), Vpn(2), Vpn(3), Vpn(9)], 7), 3);
        let p1 = pt.lookup(Vpn(1)).unwrap();
        assert_eq!(p1.gen, 7);
        assert!(!p1.flags.contains(PteFlags::DIRTY));
        assert!(p1.flags.contains(PteFlags::COW));
        let p2 = pt.lookup(Vpn(2)).unwrap();
        assert_eq!(p2.gen, 7);
        assert!(!p2.flags.contains(PteFlags::COW));
        assert!(pt.lookup(Vpn(3)).unwrap().flags.contains(PteFlags::COW));
    }

    #[test]
    fn dirty_bit_does_not_affect_translation() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), PteFlags::rw().with(PteFlags::DIRTY));
        assert!(pt.translate(va(0x1000), AccessKind::Load, false).is_ok());
        assert!(pt.translate(va(0x1000), AccessKind::Store, false).is_ok());
        assert_eq!(
            format!("{:?}", PteFlags::rw().with(PteFlags::DIRTY)),
            "[R,W,D]"
        );
    }

    #[test]
    fn extend_sorted_preserves_generation() {
        let mut pt = PageTable::new();
        let mut pte = Pte::new(Pfn(4), PteFlags::rw());
        pte.gen = 11;
        pt.extend_sorted([(Vpn(4), pte)]);
        assert_eq!(pt.lookup(Vpn(4)).unwrap().gen, 11);
    }

    #[test]
    fn flags_set_operations() {
        let f = PteFlags::rw().with(PteFlags::COW);
        assert!(f.contains(PteFlags::COW));
        let g = f.without(PteFlags::COW);
        assert!(!g.contains(PteFlags::COW));
        assert!(g.contains(PteFlags::WRITE));
        assert_eq!(format!("{:?}", PteFlags::rx()), "[R,X]");
    }
}
